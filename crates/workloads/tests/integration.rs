//! Workload-level integration tests: every workload model drives a real
//! machine and produces sensible numbers.

use std::rc::Rc;

use iorch_hypervisor::{Cluster, IoPathMode, MachineConfig, VmSpec};
use iorch_simcore::{SimDuration, SimTime, Simulation};
use iorch_workloads::*;

fn machine() -> (Simulation<Cluster>, usize) {
    let mut sim = Simulation::new(Cluster::new());
    let idx = sim
        .world_mut()
        .add_machine(MachineConfig::paper_testbed(3, IoPathMode::Paravirt));
    (sim, idx)
}

fn vm(sim: &mut Simulation<Cluster>, idx: usize, vcpus: u32, mem: u64, disk: u64) -> VmRef {
    let (cl, s) = sim.parts_mut();
    let dom = cl.create_domain(s, idx, VmSpec::new(vcpus, mem).with_disk_gb(disk), |_| {});
    VmRef { machine: idx, dom }
}

#[test]
fn ycsb_respects_read_ratio() {
    let (mut sim, idx) = machine();
    let node = vm(&mut sim, idx, 2, 4, 20);
    let rec = recorder(SimTime::ZERO);
    let (cl, s) = sim.parts_mut();
    spawn_ycsb(
        cl,
        s,
        &[node],
        None,
        YcsbParams::ycsb2(1000.0, 7),
        Rc::clone(&rec),
    );
    sim.run_until(SimTime::from_secs(3));
    let m = sim.world().machine(idx);
    let k = &m.domain(node.dom).unwrap().kernel;
    let stats = k.stats();
    // 95:5 read:write — the kernel sees mostly read ops.
    assert!(
        stats.reads > 8 * stats.writes,
        "reads={} writes={}",
        stats.reads,
        stats.writes
    );
    assert!(rec.borrow().ops > 2000);
}

#[test]
fn ycsb_bounded_run_finishes() {
    let (mut sim, idx) = machine();
    let node = vm(&mut sim, idx, 2, 4, 20);
    let rec = recorder(SimTime::ZERO);
    let (cl, s) = sim.parts_mut();
    spawn_ycsb(
        cl,
        s,
        &[node],
        None,
        YcsbParams::ycsb1(2000.0, 7).with_max_ops(500),
        Rc::clone(&rec),
    );
    sim.run_until(SimTime::from_secs(10));
    let r = rec.borrow();
    assert!(r.finished);
    assert_eq!(r.ops, 500);
}

#[test]
fn fileserver_moves_data_and_stops_at_bound() {
    let (mut sim, idx) = machine();
    let target = vm(&mut sim, idx, 2, 2, 10);
    let rec = recorder(SimTime::ZERO);
    let (cl, s) = sim.parts_mut();
    spawn_fileserver(
        cl,
        s,
        target,
        FsParams {
            threads: 2,
            pool: 200,
            max_bytes: 64 << 20,
            seed: 5,
            ..FsParams::default()
        },
        Rc::clone(&rec),
    );
    sim.run_until(SimTime::from_secs(20));
    let r = rec.borrow();
    assert!(r.finished, "FS must hit its 64 MiB bound");
    assert!(r.bytes >= 64 << 20);
}

#[test]
fn videoserver_streams_are_sequentialish() {
    let (mut sim, idx) = machine();
    let target = vm(&mut sim, idx, 2, 2, 10);
    let rec = recorder(SimTime::from_millis(200));
    let (cl, s) = sim.parts_mut();
    spawn_videoserver(
        cl,
        s,
        target,
        VsParams {
            readers: 2,
            library: 4,
            video_size: 16 << 20,
            seed: 5,
            ..VsParams::default()
        },
        Rc::clone(&rec),
    );
    sim.run_until(SimTime::from_secs(3));
    let r = rec.borrow();
    assert!(r.ops > 20, "streaming must progress: {}", r.ops);
    // Sequential 1 MiB reads with readahead: mean latency in the low-ms.
    assert!(r.hist.mean() < SimDuration::from_millis(50));
}

#[test]
fn cloud9_is_cpu_bound() {
    let (mut sim, idx) = machine();
    let target = vm(&mut sim, idx, 2, 2, 10);
    let rec = recorder(SimTime::ZERO);
    let (cl, s) = sim.parts_mut();
    spawn_cloud9(
        cl,
        s,
        target,
        Cloud9Params {
            threads: 2,
            seed: 5,
            ..Cloud9Params::default()
        },
        Rc::clone(&rec),
    );
    sim.run_until(SimTime::from_secs(2));
    let m = sim.world().machine(idx);
    // Cloud9 burns CPU with only light I/O.
    let io = m.io_bytes(target.dom);
    assert!(io < 64 << 20, "too much I/O for a CPU-bound job: {io}");
    assert!(m.utilization(sim.now()) > 0.10);
    assert!(rec.borrow().ops > 100, "steps={}", rec.borrow().ops);
}

#[test]
fn cloud9_budget_finishes() {
    let (mut sim, idx) = machine();
    let target = vm(&mut sim, idx, 2, 2, 10);
    let rec = recorder(SimTime::ZERO);
    let (cl, s) = sim.parts_mut();
    spawn_cloud9(
        cl,
        s,
        target,
        Cloud9Params {
            threads: 2,
            cpu_budget_secs: 0.5,
            seed: 5,
            ..Cloud9Params::default()
        },
        Rc::clone(&rec),
    );
    sim.run_until(SimTime::from_secs(5));
    assert!(rec.borrow().finished);
}

#[test]
fn olio_tiers_all_record() {
    let (mut sim, idx) = machine();
    let web = vm(&mut sim, idx, 2, 4, 10);
    let db = vm(&mut sim, idx, 2, 4, 60);
    let file = vm(&mut sim, idx, 2, 4, 40);
    let recs = OlioRecorders::new(SimTime::from_millis(500));
    let (cl, s) = sim.parts_mut();
    spawn_olio(
        cl,
        s,
        web,
        db,
        file,
        OlioParams {
            clients: 50,
            seed: 5,
            ..OlioParams::default()
        },
        recs.clone(),
    );
    sim.run_until(SimTime::from_secs(4));
    assert!(recs.total.borrow().ops > 100);
    assert!(recs.web.borrow().ops > 100);
    assert!(recs.db.borrow().ops > 100);
    assert!(recs.file.borrow().ops > 100);
    // End-to-end dominates each tier.
    let total = recs.total.borrow().hist.mean();
    assert!(total >= recs.db.borrow().hist.mean());
    assert!(total >= recs.file.borrow().hist.mean());
}

#[test]
fn arrivals_admit_run_and_complete() {
    let (mut sim, idx) = machine();
    let horizon = SimTime::from_secs(25);
    let stats = {
        let (cl, s) = sim.parts_mut();
        spawn_arrivals(
            cl,
            s,
            idx,
            ArrivalParams {
                lambda_per_min: 30.0,
                fs_bytes: 32 << 20,
                ycsb_ops: 2_000,
                cloud9_cpu_secs: 1.0,
                seed: 5,
                ..ArrivalParams::default()
            },
            horizon,
        )
    };
    sim.run_until(horizon);
    let st = stats.borrow();
    assert!(st.arrived >= 5, "arrived={}", st.arrived);
    assert!(st.started >= 5);
    assert!(st.completed >= 1, "completed={}", st.completed);
    // Conservation: everything started is running, completed, or was
    // destroyed with the run still live.
    assert!(st.completed as usize + st.running <= st.started as usize);
}

#[test]
fn bursty_generator_conserves_average_rate() {
    let (mut sim, idx) = machine();
    let node = vm(&mut sim, idx, 2, 4, 20);
    let rec = recorder(SimTime::from_secs(1));
    let (cl, s) = sim.parts_mut();
    spawn_ycsb(
        cl,
        s,
        &[node],
        None,
        YcsbParams::ycsb1(1000.0, 7).with_burst(SimDuration::from_millis(50)),
        Rc::clone(&rec),
    );
    sim.run_until(SimTime::from_secs(6));
    let now = sim.now();
    let rate = rec.borrow().ops_per_sec(now);
    assert!(
        (700.0..1300.0).contains(&rate),
        "bursty shaping must conserve the mean rate, got {rate}"
    );
}
