//! Randomized tests at the workload layer: recorders and parameter
//! plumbing hold their invariants for arbitrary inputs. Driven by the
//! in-tree generators (`iorch_simcore::gen`) with a fixed seed sweep — no
//! external property-test crate.

use iorch_simcore::{gen, SimDuration, SimTime};
use iorch_workloads::recorder;
use iorch_workloads::YcsbParams;

const CASES: usize = 64;

/// Recorder warm-up filtering: only samples at/after `record_after`
/// count, and byte totals equal the sum of counted samples.
#[test]
fn recorder_counts_exactly_post_warmup() {
    gen::for_each_seed(0x70_0001, CASES, |seed, rng| {
        let warmup_ms = rng.below(1000);
        let samples = gen::vec_between(rng, 1, 100, |r| (r.below(2000), 1 + r.below(9_999)));
        let rec = recorder(SimTime::from_millis(warmup_ms));
        let mut expect_ops = 0u64;
        let mut expect_bytes = 0u64;
        for &(t_ms, bytes) in &samples {
            rec.borrow_mut().record(
                SimTime::from_millis(t_ms),
                SimDuration::from_micros(10),
                bytes,
            );
            if t_ms >= warmup_ms {
                expect_ops += 1;
                expect_bytes += bytes;
            }
        }
        let r = rec.borrow();
        assert_eq!(r.ops, expect_ops, "seed {seed}");
        assert_eq!(r.bytes, expect_bytes, "seed {seed}");
        assert_eq!(r.hist.count(), expect_ops, "seed {seed}");
    });
}

/// Throughput is bytes divided by the measured window, never negative
/// or infinite for a positive window.
#[test]
fn throughput_well_formed() {
    gen::for_each_seed(0x70_0002, CASES, |seed, rng| {
        let bytes = 1 + rng.below(999_999_999);
        let window_ms = 1 + rng.below(99_999);
        let rec = recorder(SimTime::ZERO);
        rec.borrow_mut()
            .record(SimTime::from_millis(1), SimDuration::from_micros(5), bytes);
        let now = SimTime::from_millis(window_ms);
        let bps = rec.borrow().throughput_bps(now);
        let expect = bytes as f64 / (window_ms as f64 / 1000.0);
        assert!((bps - expect).abs() / expect < 1e-9, "seed {seed}");
    });
}

/// YCSB burst shaping conserves the configured mean rate over a cycle
/// for any rate and burst length below the period.
#[test]
fn burst_params_conserve_rate() {
    gen::for_each_seed(0x70_0003, CASES, |seed, rng| {
        let rate = gen::f64_in(rng, 10.0, 10_000.0);
        let burst_ms = 1 + rng.below(899);
        let p = YcsbParams::ycsb1(rate, 1).with_burst(SimDuration::from_millis(burst_ms));
        let b = p.burst.unwrap();
        // Integrate the piecewise rate over one cycle.
        let peak = rate * b.peak_factor;
        let in_burst = peak.min(rate * b.period.as_secs_f64() / b.burst_len.as_secs_f64())
            * b.burst_len.as_secs_f64();
        let per_cycle = rate * b.period.as_secs_f64();
        let off = (per_cycle - peak * b.burst_len.as_secs_f64()).max(0.0);
        let total = in_burst.min(per_cycle) + off;
        assert!(
            (total - per_cycle).abs() / per_cycle < 0.05,
            "cycle integral {total} vs {per_cycle} (seed {seed})"
        );
    });
}
