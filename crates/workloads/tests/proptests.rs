//! Property-based tests at the workload layer: recorders and parameter
//! plumbing hold their invariants for arbitrary inputs.

use proptest::prelude::*;

use iorch_simcore::{SimDuration, SimTime};
use iorch_workloads::recorder;
use iorch_workloads::YcsbParams;

proptest! {
    /// Recorder warm-up filtering: only samples at/after `record_after`
    /// count, and byte totals equal the sum of counted samples.
    #[test]
    fn recorder_counts_exactly_post_warmup(
        warmup_ms in 0u64..1000,
        samples in proptest::collection::vec((0u64..2000, 1u64..10_000), 1..100),
    ) {
        let rec = recorder(SimTime::from_millis(warmup_ms));
        let mut expect_ops = 0u64;
        let mut expect_bytes = 0u64;
        for &(t_ms, bytes) in &samples {
            rec.borrow_mut().record(
                SimTime::from_millis(t_ms),
                SimDuration::from_micros(10),
                bytes,
            );
            if t_ms >= warmup_ms {
                expect_ops += 1;
                expect_bytes += bytes;
            }
        }
        let r = rec.borrow();
        prop_assert_eq!(r.ops, expect_ops);
        prop_assert_eq!(r.bytes, expect_bytes);
        prop_assert_eq!(r.hist.count(), expect_ops);
    }

    /// Throughput is bytes divided by the measured window, never negative
    /// or infinite for a positive window.
    #[test]
    fn throughput_well_formed(bytes in 1u64..1_000_000_000, window_ms in 1u64..100_000) {
        let rec = recorder(SimTime::ZERO);
        rec.borrow_mut().record(SimTime::from_millis(1), SimDuration::from_micros(5), bytes);
        let now = SimTime::from_millis(window_ms);
        let bps = rec.borrow().throughput_bps(now);
        let expect = bytes as f64 / (window_ms as f64 / 1000.0);
        prop_assert!((bps - expect).abs() / expect < 1e-9);
    }

    /// YCSB burst shaping conserves the configured mean rate over a cycle
    /// for any rate and burst length below the period.
    #[test]
    fn burst_params_conserve_rate(rate in 10.0f64..10_000.0, burst_ms in 1u64..900) {
        let p = YcsbParams::ycsb1(rate, 1).with_burst(SimDuration::from_millis(burst_ms));
        let b = p.burst.unwrap();
        // Integrate the piecewise rate over one cycle.
        let peak = rate * b.peak_factor;
        let in_burst = peak.min(rate * b.period.as_secs_f64() / b.burst_len.as_secs_f64())
            * b.burst_len.as_secs_f64();
        let per_cycle = rate * b.period.as_secs_f64();
        let off = (per_cycle - peak * b.burst_len.as_secs_f64()).max(0.0);
        let total = in_burst.min(per_cycle) + off;
        prop_assert!((total - per_cycle).abs() / per_cycle < 0.05,
            "cycle integral {total} vs {per_cycle}");
    }
}
