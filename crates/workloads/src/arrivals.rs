//! Dynamic VM arrivals — the §5.3/§5.5 methodology: VMs arrive as a
//! Poisson process at λ per minute, with VCPUs/memory drawn uniformly from
//! {2,4,6,8,10}, run one randomly chosen application (FS, YCSB1 or Cloud9)
//! with a fixed problem size, and depart when done. Arrivals are admitted
//! FIFO against a VCPU-capacity limit.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use iorch_hypervisor::{Cluster, DomainId, Sched, VmSpec};
use iorch_simcore::{SimDuration, SimRng, SimTime};

use crate::cloud9::{spawn_cloud9, Cloud9Params};
use crate::common::{recorder, Rec, VmRef};
use crate::filebench::{spawn_fileserver, FsParams};
use crate::ycsb::{spawn_ycsb, YcsbParams};

/// Which app a dynamically arriving VM runs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ArrivalApp {
    /// FileBench file server, bounded by bytes moved.
    Fs,
    /// YCSB1 (update heavy), bounded by operation count.
    Ycsb1,
    /// Cloud9, bounded by CPU seconds.
    Cloud9,
}

/// Arrival-process parameters.
#[derive(Clone, Copy, Debug)]
pub struct ArrivalParams {
    /// Mean arrivals per minute (λ).
    pub lambda_per_min: f64,
    /// FS problem size: bytes to move before the VM departs
    /// (paper: "2 GB data transmission"; scaled runs shrink it).
    pub fs_bytes: u64,
    /// YCSB problem size: operations (paper: 50 000).
    pub ycsb_ops: u64,
    /// YCSB offered rate while the VM lives.
    pub ycsb_rate: f64,
    /// Cloud9 problem size: CPU seconds per thread.
    pub cloud9_cpu_secs: f64,
    /// VCPU admission capacity (with overcommit).
    pub vcpu_capacity: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ArrivalParams {
    fn default() -> Self {
        ArrivalParams {
            lambda_per_min: 8.0,
            fs_bytes: 2 << 30,
            ycsb_ops: 50_000,
            ycsb_rate: 2_000.0,
            cloud9_cpu_secs: 20.0,
            vcpu_capacity: 24, // 12 cores, 2x overcommit
            seed: 1,
        }
    }
}

/// Live statistics of the arrival experiment.
#[derive(Debug, Default)]
pub struct ArrivalStats {
    /// VMs that arrived.
    pub arrived: u64,
    /// VMs admitted and started.
    pub started: u64,
    /// VMs that finished their problem size and departed.
    pub completed: u64,
    /// Currently waiting in the FIFO admission queue.
    pub queued: usize,
    /// Currently running.
    pub running: usize,
    /// Application payload bytes moved by *completed* VMs (the aggregate
    /// throughput metric of the paper's Table 2, scaled runs).
    pub payload_bytes: u64,
}

/// Shared stats handle.
pub type StatsHandle = Rc<RefCell<ArrivalStats>>;

struct Pending {
    spec: VmSpec,
    app: ArrivalApp,
}

struct Running {
    dom: DomainId,
    vcpus: u32,
    rec: Rec,
}

struct Arrivals {
    p: ArrivalParams,
    machine: usize,
    rng: SimRng,
    fifo: VecDeque<Pending>,
    running: Vec<Running>,
    used_vcpus: u32,
    stats: StatsHandle,
    stopped: bool,
    next_seed: u64,
}

type Shared = Rc<RefCell<Arrivals>>;

/// Start the arrival process on a machine, running until `horizon`.
/// Returns the stats handle.
pub fn spawn_arrivals(
    cl: &mut Cluster,
    s: &mut Sched,
    machine: usize,
    p: ArrivalParams,
    horizon: SimTime,
) -> StatsHandle {
    let stats: StatsHandle = Rc::new(RefCell::new(ArrivalStats::default()));
    let st = Rc::new(RefCell::new(Arrivals {
        rng: SimRng::new(p.seed),
        machine,
        fifo: VecDeque::new(),
        running: Vec::new(),
        used_vcpus: 0,
        stats: Rc::clone(&stats),
        stopped: false,
        next_seed: p.seed.wrapping_mul(0x9E37),
        p,
    }));
    schedule_arrival(&st, s, horizon);
    // Completion reaper: poll running VMs and tear down finished ones.
    let st2 = Rc::clone(&st);
    s.schedule_every(SimDuration::from_millis(100), move |cl, s| {
        reap(&st2, cl, s);
        s.now() < horizon
    });
    let _ = cl;
    stats
}

fn schedule_arrival(state: &Shared, s: &mut Sched, horizon: SimTime) {
    let gap = {
        let mut x = state.borrow_mut();
        if x.stopped {
            return;
        }
        let mean = SimDuration::from_secs_f64(60.0 / x.p.lambda_per_min.max(0.01));
        x.rng.exp_duration(mean)
    };
    if s.now() + gap > horizon {
        return;
    }
    let st = Rc::clone(state);
    s.schedule_in(gap, move |cl, s| {
        on_arrival(&st, cl, s);
        schedule_arrival(&st, s, horizon);
    });
}

fn on_arrival(state: &Shared, cl: &mut Cluster, s: &mut Sched) {
    {
        let mut x = state.borrow_mut();
        let size = *x.rng.pick(&[2u32, 4, 6, 8, 10]);
        let app = *x
            .rng
            .pick(&[ArrivalApp::Fs, ArrivalApp::Ycsb1, ArrivalApp::Cloud9]);
        let spec = VmSpec::new(size, size as u64).with_disk_gb(12);
        x.stats.borrow_mut().arrived += 1;
        x.fifo.push_back(Pending { spec, app });
        x.stats.borrow_mut().queued = x.fifo.len();
    }
    admit(state, cl, s);
}

fn admit(state: &Shared, cl: &mut Cluster, s: &mut Sched) {
    loop {
        let next = {
            let mut x = state.borrow_mut();
            match x.fifo.front() {
                Some(p) if x.used_vcpus + p.spec.vcpus <= x.p.vcpu_capacity => {
                    let p = x.fifo.pop_front().unwrap();
                    x.stats.borrow_mut().queued = x.fifo.len();
                    Some(p)
                }
                _ => None,
            }
        };
        let Some(pending) = next else { break };
        start_vm(state, cl, s, pending);
    }
}

fn start_vm(state: &Shared, cl: &mut Cluster, s: &mut Sched, pending: Pending) {
    let (machine, seed, params) = {
        let mut x = state.borrow_mut();
        x.next_seed = x.next_seed.wrapping_add(0x9E37_79B9);
        (x.machine, x.next_seed, x.p)
    };
    let dom = cl.create_domain(s, machine, pending.spec, |g| {
        // Dynamic VMs exercise writeback quickly.
        g.wb.periodic_interval = SimDuration::from_secs(1);
        g.wb.dirty_expire = SimDuration::from_secs(5);
    });
    let vm = VmRef { machine, dom };
    let rec = recorder(s.now());
    let threads = pending.spec.vcpus.min(4);
    match pending.app {
        ArrivalApp::Fs => {
            let p = FsParams {
                threads,
                max_bytes: params.fs_bytes,
                seed,
                ..FsParams::default()
            };
            spawn_fileserver(cl, s, vm, p, Rc::clone(&rec));
        }
        ArrivalApp::Ycsb1 => {
            let p = YcsbParams::ycsb1(params.ycsb_rate, seed).with_max_ops(params.ycsb_ops);
            spawn_ycsb(cl, s, &[vm], None, p, Rc::clone(&rec));
        }
        ArrivalApp::Cloud9 => {
            let p = Cloud9Params {
                threads,
                cpu_budget_secs: params.cloud9_cpu_secs,
                seed,
                ..Cloud9Params::default()
            };
            spawn_cloud9(cl, s, vm, p, Rc::clone(&rec));
        }
    }
    let mut x = state.borrow_mut();
    x.used_vcpus += pending.spec.vcpus;
    x.running.push(Running {
        dom,
        vcpus: pending.spec.vcpus,
        rec,
    });
    let mut st = x.stats.borrow_mut();
    st.started += 1;
    st.running = x.running.len();
}

fn reap(state: &Shared, cl: &mut Cluster, s: &mut Sched) {
    let finished: Vec<(DomainId, u32)> = {
        let x = state.borrow();
        x.running
            .iter()
            .filter(|r| r.rec.borrow().finished)
            .map(|r| (r.dom, r.vcpus))
            .collect()
    };
    for (dom, vcpus) in finished {
        {
            let mut x = state.borrow_mut();
            let payload: u64 = x
                .running
                .iter()
                .filter(|r| r.dom == dom)
                .map(|r| r.rec.borrow().bytes)
                .sum();
            x.running.retain(|r| r.dom != dom);
            x.used_vcpus -= vcpus;
            let mut st = x.stats.borrow_mut();
            st.completed += 1;
            st.running = x.running.len();
            st.payload_bytes += payload;
        }
        let machine = state.borrow().machine;
        cl.destroy_domain(s, machine, dom);
    }
    admit(state, cl, s);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_default() {
        let p = ArrivalParams::default();
        assert!(p.vcpu_capacity >= 10, "must admit the largest VM size");
        assert!(p.lambda_per_min > 0.0);
    }
}
