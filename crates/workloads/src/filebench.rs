//! FileBench-suite workload models \[18\]: file server (FS), web server
//! (WS), video server (VS) and multi-stream read — the synthetic drivers
//! behind the paper's Figs. 8–10.

use std::cell::RefCell;
use std::rc::Rc;

use iorch_guestos::{FileId, FileOp};
use iorch_hypervisor::{Cluster, Sched};
use iorch_simcore::{SimDuration, SimRng};

use crate::common::{provision_files, Rec, VmRef};

/// File-server (FS) parameters: create/write/read/append/delete over a
/// directory tree; write-dominated.
#[derive(Clone, Copy, Debug)]
pub struct FsParams {
    /// Worker threads.
    pub threads: u32,
    /// Size of each file.
    pub file_size: u64,
    /// Live file pool size. With `file_size` this sets the working set —
    /// Fig. 8 keeps it above twice the VM memory.
    pub pool: usize,
    /// Append size per op.
    pub append_size: u64,
    /// CPU per file operation.
    pub op_cpu: SimDuration,
    /// Stop once this many payload bytes moved (Table 2's "2 GB data
    /// transmission"); `u64::MAX` = unbounded.
    pub max_bytes: u64,
    /// If set, reads target one of the `k` most recently written files
    /// (temporal locality: recent uploads are the hot downloads) instead
    /// of a uniform pick over the pool.
    pub read_recent: Option<u32>,
    /// If set, each thread works in waves: `0` cycles of activity followed
    /// by an exponentially distributed idle period with mean `1` — the
    /// request-wave pattern of a real file server. `None` = closed loop.
    pub burst: Option<(u32, SimDuration)>,
    /// RNG seed.
    pub seed: u64,
}

impl Default for FsParams {
    fn default() -> Self {
        FsParams {
            threads: 4,
            file_size: 128 << 10,
            pool: 400,
            append_size: 16 << 10,
            op_cpu: SimDuration::from_micros(60),
            max_bytes: u64::MAX,
            read_recent: None,
            burst: None,
            seed: 1,
        }
    }
}

struct FsState {
    p: FsParams,
    vm: VmRef,
    files: Vec<FileId>,
    recent: std::collections::VecDeque<usize>,
    rng: SimRng,
    rec: Rec,
}

/// Launch the FS workload on a VM.
pub fn spawn_fileserver(cl: &mut Cluster, s: &mut Sched, vm: VmRef, p: FsParams, rec: Rec) {
    let files = provision_files(cl, vm, p.pool, p.file_size);
    let st = Rc::new(RefCell::new(FsState {
        rng: SimRng::new(p.seed),
        recent: std::collections::VecDeque::new(),
        p,
        vm,
        files,
        rec,
    }));
    for t in 0..p.threads {
        fs_cycle(Rc::clone(&st), cl, s, t, 0);
    }
}

/// One FS cycle: rewrite a file (the churn: delete+create modelled as a
/// full overwrite), read another whole, append to a third. With wave mode
/// on, a thread rests after its burst of cycles.
fn fs_cycle(st: Rc<RefCell<FsState>>, cl: &mut Cluster, s: &mut Sched, thread: u32, in_burst: u32) {
    let (vm, cpu, stop, rest) = {
        let mut x = st.borrow_mut();
        let r = x.rec.borrow();
        let stop = r.stopped || r.finished;
        drop(r);
        let rest = match x.p.burst {
            Some((cycles, idle)) if in_burst >= cycles => Some(x.rng.exp_duration(idle)),
            _ => None,
        };
        (x.vm, x.p.op_cpu, stop, rest)
    };
    if stop {
        return;
    }
    if let Some(idle) = rest {
        let st2 = Rc::clone(&st);
        s.schedule_in(idle, move |cl, s| fs_cycle(st2, cl, s, thread, 0));
        return;
    }
    let st2 = Rc::clone(&st);
    cl.run_cpu(
        s,
        vm.machine,
        vm.dom,
        thread,
        cpu,
        Box::new(move |cl, s| {
            let (vm, write_op, read_op, append_op, bytes) = {
                let mut x = st2.borrow_mut();
                let n = x.files.len() as u64;
                let fsz = x.p.file_size;
                let asz = x.p.append_size;
                let iw = x.rng.below(n) as usize;
                let ir = match x.p.read_recent {
                    Some(k) if !x.recent.is_empty() => {
                        let span = x.recent.len().min(k as usize) as u64;
                        let back = x.rng.below(span) as usize;
                        x.recent[x.recent.len() - 1 - back]
                    }
                    _ => x.rng.below(n) as usize,
                };
                let ia = x.rng.below(n) as usize;
                if let Some(k) = x.p.read_recent {
                    x.recent.push_back(iw);
                    if x.recent.len() > 4 * k as usize {
                        x.recent.pop_front();
                    }
                }
                let (fw, fr, fa) = (x.files[iw], x.files[ir], x.files[ia]);
                (
                    x.vm,
                    FileOp::Write {
                        file: fw,
                        offset: 0,
                        len: fsz,
                    },
                    FileOp::Read {
                        file: fr,
                        offset: 0,
                        len: fsz,
                    },
                    FileOp::Write {
                        file: fa,
                        offset: fsz - asz,
                        len: asz,
                    },
                    fsz * 2 + asz,
                )
            };
            let started = s.now();
            // Chain: write -> read -> append -> record -> next cycle.
            let st3 = Rc::clone(&st2);
            cl.submit_op(
                s,
                vm.machine,
                vm.dom,
                thread,
                write_op,
                Some(Box::new(move |cl, s, _| {
                    let st4 = Rc::clone(&st3);
                    cl.submit_op(
                        s,
                        vm.machine,
                        vm.dom,
                        thread,
                        read_op,
                        Some(Box::new(move |cl, s, _| {
                            let st5 = Rc::clone(&st4);
                            cl.submit_op(
                                s,
                                vm.machine,
                                vm.dom,
                                thread,
                                append_op,
                                Some(Box::new(move |cl, s, _| {
                                    let now = s.now();
                                    {
                                        let x = st5.borrow();
                                        let mut r = x.rec.borrow_mut();
                                        r.record(now, now.saturating_since(started), bytes);
                                        if r.bytes >= x.p.max_bytes {
                                            r.finished = true;
                                        }
                                    }
                                    fs_cycle(st5, cl, s, thread, in_burst + 1);
                                })),
                            );
                        })),
                    );
                })),
            );
        }),
    );
}

/// Web-server (WS) parameters: read a set of pages, append to a log.
#[derive(Clone, Copy, Debug)]
pub struct WsParams {
    /// Worker threads.
    pub threads: u32,
    /// Page files in the docroot.
    pub pages: usize,
    /// Page size.
    pub page_size: u64,
    /// Pages read per request.
    pub reads_per_req: usize,
    /// Log append size per request.
    pub log_append: u64,
    /// CPU per request.
    pub op_cpu: SimDuration,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WsParams {
    fn default() -> Self {
        WsParams {
            threads: 4,
            pages: 5_000,
            page_size: 16 << 10,
            reads_per_req: 10,
            log_append: 8 << 10,
            op_cpu: SimDuration::from_micros(120),
            seed: 1,
        }
    }
}

struct WsState {
    p: WsParams,
    vm: VmRef,
    pages: Vec<FileId>,
    log: FileId,
    log_off: u64,
    rng: SimRng,
    rec: Rec,
}

/// Launch the WS workload on a VM.
pub fn spawn_webserver(cl: &mut Cluster, s: &mut Sched, vm: VmRef, p: WsParams, rec: Rec) {
    let pages = provision_files(cl, vm, p.pages, p.page_size);
    let log = provision_files(cl, vm, 1, 1 << 30)[0];
    let st = Rc::new(RefCell::new(WsState {
        rng: SimRng::new(p.seed),
        p,
        vm,
        pages,
        log,
        log_off: 0,
        rec,
    }));
    for t in 0..p.threads {
        ws_start(Rc::clone(&st), cl, s, t);
    }
}

/// Begin a WS request: request-handling CPU first, then the page reads.
fn ws_start(st: Rc<RefCell<WsState>>, cl: &mut Cluster, s: &mut Sched, thread: u32) {
    let (vm, cpu, stop) = {
        let x = st.borrow();
        let stopped = x.rec.borrow().stopped;
        (x.vm, x.p.op_cpu, stopped)
    };
    if stop {
        return;
    }
    let started = s.now();
    let st2 = Rc::clone(&st);
    cl.run_cpu(
        s,
        vm.machine,
        vm.dom,
        thread,
        cpu,
        Box::new(move |cl, s| {
            ws_cycle(st2, cl, s, thread, 0, started);
        }),
    );
}

fn ws_cycle(
    st: Rc<RefCell<WsState>>,
    cl: &mut Cluster,
    s: &mut Sched,
    thread: u32,
    reads_done: usize,
    started: iorch_simcore::SimTime,
) {
    let (vm, stop) = {
        let x = st.borrow();
        let stopped = x.rec.borrow().stopped;
        (x.vm, stopped)
    };
    if stop {
        return;
    }
    let (op, is_last, bytes) = {
        let mut x = st.borrow_mut();
        if reads_done < x.p.reads_per_req {
            let n = x.pages.len() as u64;
            let i = x.rng.below(n) as usize;
            let f = x.pages[i];
            let sz = x.p.page_size;
            (
                FileOp::Read {
                    file: f,
                    offset: 0,
                    len: sz,
                },
                false,
                sz,
            )
        } else {
            let off = x.log_off;
            let append = x.p.log_append;
            x.log_off = (x.log_off + append) % ((1 << 30) - append);
            (
                FileOp::Write {
                    file: x.log,
                    offset: off,
                    len: append,
                },
                true,
                append,
            )
        }
    };
    let st2 = Rc::clone(&st);
    cl.submit_op(
        s,
        vm.machine,
        vm.dom,
        thread,
        op,
        Some(Box::new(move |cl, s, _| {
            if is_last {
                let now = s.now();
                {
                    let x = st2.borrow();
                    // Whole-request latency: handling CPU + page reads +
                    // log append. Payload counts all of them.
                    let total = x.p.reads_per_req as u64 * x.p.page_size + x.p.log_append;
                    let _ = bytes;
                    x.rec
                        .borrow_mut()
                        .record(now, now.saturating_since(started), total);
                }
                ws_start(st2, cl, s, thread);
            } else {
                ws_cycle(st2, cl, s, thread, reads_done + 1, started);
            }
        })),
    );
}

/// Video-server (VS) parameters: streaming readers plus one ingest writer.
#[derive(Clone, Copy, Debug)]
pub struct VsParams {
    /// Concurrent streaming readers.
    pub readers: u32,
    /// Video file size.
    pub video_size: u64,
    /// Library size in files.
    pub library: usize,
    /// Streaming read chunk.
    pub chunk: u64,
    /// Ingest write chunk.
    pub ingest_chunk: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for VsParams {
    fn default() -> Self {
        VsParams {
            readers: 4,
            video_size: 64 << 20,
            library: 20,
            chunk: 1 << 20,
            ingest_chunk: 1 << 20,
            seed: 1,
        }
    }
}

struct VsState {
    p: VsParams,
    vm: VmRef,
    library: Vec<FileId>,
    positions: Vec<u64>,
    ingest_pos: u64,
    ingest_file: usize,
    rng: SimRng,
    rec: Rec,
}

/// Launch the VS workload on a VM.
pub fn spawn_videoserver(cl: &mut Cluster, s: &mut Sched, vm: VmRef, p: VsParams, rec: Rec) {
    let library = provision_files(cl, vm, p.library, p.video_size);
    let st = Rc::new(RefCell::new(VsState {
        rng: SimRng::new(p.seed),
        positions: vec![0; p.readers as usize],
        ingest_pos: 0,
        ingest_file: 0,
        p,
        vm,
        library,
        rec,
    }));
    for t in 0..p.readers {
        vs_read(Rc::clone(&st), cl, s, t);
    }
    vs_ingest(st, cl, s);
}

fn vs_read(st: Rc<RefCell<VsState>>, cl: &mut Cluster, s: &mut Sched, reader: u32) {
    let (vm, op, stop) = {
        let mut x = st.borrow_mut();
        let stop = x.rec.borrow().stopped;
        let chunk = x.p.chunk;
        let vsz = x.p.video_size;
        let pos = x.positions[reader as usize];
        let lib = x.library.len() as u64;
        // Each reader streams one video; at the end it picks another.
        let file_idx = (reader as u64 + (pos / vsz)) % lib;
        let file = x.library[file_idx as usize];
        let offset = pos % (vsz - chunk).max(1);
        x.positions[reader as usize] = pos + chunk;
        let _ = &mut x.rng;
        (
            x.vm,
            FileOp::Read {
                file,
                offset,
                len: chunk,
            },
            stop,
        )
    };
    if stop {
        return;
    }
    let started = s.now();
    let st2 = Rc::clone(&st);
    cl.submit_op(
        s,
        vm.machine,
        vm.dom,
        reader,
        op,
        Some(Box::new(move |cl, s, _| {
            let chunk = {
                let x = st2.borrow();
                x.p.chunk
            };
            // Stream-processing CPU (demux + copy), and a guard against
            // zero-time loops when the video is fully cached.
            let cpu = SimDuration::from_secs_f64(chunk as f64 / 6e9);
            let st3 = Rc::clone(&st2);
            cl.run_cpu(
                s,
                vm.machine,
                vm.dom,
                reader,
                cpu,
                Box::new(move |cl, s| {
                    let now = s.now();
                    {
                        let x = st3.borrow();
                        x.rec
                            .borrow_mut()
                            .record(now, now.saturating_since(started), chunk);
                    }
                    vs_read(st3, cl, s, reader);
                }),
            );
        })),
    );
}

fn vs_ingest(st: Rc<RefCell<VsState>>, cl: &mut Cluster, s: &mut Sched) {
    let (vm, op, stop) = {
        let mut x = st.borrow_mut();
        let stop = x.rec.borrow().stopped;
        let chunk = x.p.ingest_chunk;
        let vsz = x.p.video_size;
        if x.ingest_pos + chunk > vsz {
            x.ingest_pos = 0;
            x.ingest_file = (x.ingest_file + 1) % x.library.len();
        }
        let file = x.library[x.ingest_file];
        let off = x.ingest_pos;
        x.ingest_pos += chunk;
        (
            x.vm,
            FileOp::Write {
                file,
                offset: off,
                len: chunk,
            },
            stop,
        )
    };
    if stop {
        return;
    }
    let st2 = Rc::clone(&st);
    cl.submit_op(
        s,
        vm.machine,
        vm.dom,
        0,
        op,
        Some(Box::new(move |cl, s, _| {
            // Transcode/ingest CPU between chunks.
            let cpu = {
                let x = st2.borrow();
                SimDuration::from_secs_f64(x.p.ingest_chunk as f64 / 2e9)
            };
            let st3 = Rc::clone(&st2);
            cl.run_cpu(
                s,
                vm.machine,
                vm.dom,
                0,
                cpu,
                Box::new(move |cl, s| {
                    vs_ingest(st3, cl, s);
                }),
            );
        })),
    );
}

/// Multi-stream sequential read parameters (§5.5's I/O-intensive half).
#[derive(Clone, Copy, Debug)]
pub struct MultiStreamParams {
    /// Concurrent streams (threads).
    pub streams: u32,
    /// Per-stream file size.
    pub file_size: u64,
    /// Read size per op.
    pub read_size: u64,
    /// First VCPU to pin streams onto (streams take consecutive VCPUs).
    pub first_vcpu: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MultiStreamParams {
    fn default() -> Self {
        MultiStreamParams {
            streams: 4,
            file_size: 1 << 30,
            read_size: 1 << 20,
            first_vcpu: 0,
            seed: 1,
        }
    }
}

struct MsState {
    p: MultiStreamParams,
    vm: VmRef,
    files: Vec<FileId>,
    positions: Vec<u64>,
    rec: Rec,
}

/// Launch multi-stream sequential reads on a VM (one file per stream).
pub fn spawn_multistream(
    cl: &mut Cluster,
    s: &mut Sched,
    vm: VmRef,
    p: MultiStreamParams,
    rec: Rec,
) {
    let files = provision_files(cl, vm, p.streams as usize, p.file_size);
    let st = Rc::new(RefCell::new(MsState {
        positions: vec![0; p.streams as usize],
        p,
        vm,
        files,
        rec,
    }));
    for t in 0..p.streams {
        ms_read(Rc::clone(&st), cl, s, t);
    }
}

fn ms_read(st: Rc<RefCell<MsState>>, cl: &mut Cluster, s: &mut Sched, stream: u32) {
    // Copying the payload to userspace costs CPU (~8 GB/s memcpy); this
    // also keeps a fully-cached stream from looping in zero simulated time.
    const COPY_BW: f64 = 8e9;
    let (vm, vcpu, op, stop) = {
        let mut x = st.borrow_mut();
        let stop = x.rec.borrow().stopped;
        let rsz = x.p.read_size;
        let fsz = x.p.file_size;
        let pos = x.positions[stream as usize];
        let offset = pos % (fsz - rsz).max(1);
        x.positions[stream as usize] = pos + rsz;
        let file = x.files[stream as usize];
        (
            x.vm,
            x.p.first_vcpu + stream,
            FileOp::Read {
                file,
                offset,
                len: rsz,
            },
            stop,
        )
    };
    if stop {
        return;
    }
    let started = s.now();
    let st2 = Rc::clone(&st);
    cl.submit_op(
        s,
        vm.machine,
        vm.dom,
        vcpu,
        op,
        Some(Box::new(move |cl, s, _| {
            let rsz = {
                let x = st2.borrow();
                x.p.read_size
            };
            let copy = SimDuration::from_secs_f64(rsz as f64 / COPY_BW);
            let st3 = Rc::clone(&st2);
            cl.run_cpu(
                s,
                vm.machine,
                vm.dom,
                vcpu,
                copy,
                Box::new(move |cl, s| {
                    let now = s.now();
                    {
                        let x = st3.borrow();
                        x.rec
                            .borrow_mut()
                            .record(now, now.saturating_since(started), rsz);
                    }
                    ms_read(st3, cl, s, stream);
                }),
            );
        })),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_defaults_sane() {
        let fs = FsParams::default();
        assert!(fs.pool as u64 * fs.file_size > 32 << 20);
        let ws = WsParams::default();
        assert!(ws.reads_per_req >= 1);
        let vs = VsParams::default();
        assert!(vs.video_size > vs.chunk);
        let ms = MultiStreamParams::default();
        assert!(ms.file_size > ms.read_size);
    }
}
