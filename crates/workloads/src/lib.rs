//! # iorch-workloads — the paper's application models
//!
//! Every workload the SC '15 evaluation runs, modelled by its I/O shape
//! and drive mode:
//!
//! * [`ycsb`] — YCSB1/YCSB2 over a Cassandra-like store (zipfian reads,
//!   commit-log appends, memtable flush bursts, multi-node forwarding,
//!   optional §5.6 bursty arrivals);
//! * [`olio`] — the three-tier Olio social-events app driven closed-loop
//!   by a CloudStone/Faban-style client emulator, with per-tier recording;
//! * [`blast`] — mpiBLAST partitioned sequential scans + master
//!   coordination over the network;
//! * [`cloud9`] — the CPU-intensive co-runner;
//! * [`filebench`] — FS / WS / VS / multi-stream read;
//! * [`arrivals`] — Poisson VM arrivals with random sizes and fixed
//!   problem sizes (Table 2, Figs. 10–11);
//! * [`common`] — [`VmRef`], latency [`Recorder`]s, provisioning helpers.

#![warn(missing_docs)]

pub mod arrivals;
pub mod blast;
pub mod cloud9;
pub mod common;
pub mod filebench;
pub mod olio;
pub mod ycsb;

pub use arrivals::{spawn_arrivals, ArrivalApp, ArrivalParams, ArrivalStats, StatsHandle};
pub use blast::{spawn_blast, BlastParams};
pub use cloud9::{spawn_cloud9, Cloud9Params};
pub use common::{provision_files, recorder, recorder_live, Rec, Recorder, VmRef};
pub use filebench::{
    spawn_fileserver, spawn_multistream, spawn_videoserver, spawn_webserver, FsParams,
    MultiStreamParams, VsParams, WsParams,
};
pub use olio::{spawn_olio, OlioParams, OlioRecorders};
pub use ycsb::{spawn_ycsb, BurstParams, YcsbParams};
