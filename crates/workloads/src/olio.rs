//! Olio — the three-tier Web 2.0 social-events application (§5.1).
//!
//! Three VMs: Apache+PHP web frontend, MySQL database (~40 GB data set),
//! and a file server for static content. A CloudStone/Faban-style emulator
//! drives it closed-loop: each of N emulated clients thinks, then issues a
//! request that flows web → db (1–2 queries, occasional insert) → file
//! server → web render. Per-tier latencies are recorded separately so
//! Fig. 6's tier-by-tier distributions can be regenerated.

use std::cell::RefCell;
use std::rc::Rc;

use iorch_guestos::{FileId, FileOp};
use iorch_hypervisor::{Cluster, Sched};
use iorch_simcore::{SimDuration, SimRng, SimTime, Zipfian};

use crate::common::{provision_files, recorder, Rec, VmRef};

/// Olio deployment and load parameters.
#[derive(Clone, Copy, Debug)]
pub struct OlioParams {
    /// Emulated concurrent clients (the paper sweeps 50–300).
    pub clients: u32,
    /// Mean think time between a response and the next request.
    pub think_time: SimDuration,
    /// Database size in bytes (paper: ~40 GB for 500 users).
    pub db_size: u64,
    /// Static files on the file-server VM.
    pub static_files: usize,
    /// Static file size.
    pub static_size: u64,
    /// Database queries per request.
    pub queries_per_req: u32,
    /// Fraction of requests that write (add an event).
    pub write_fraction: f64,
    /// PHP CPU per request (frontend).
    pub web_cpu: SimDuration,
    /// CPU per DB query.
    pub db_cpu: SimDuration,
    /// Render CPU after data arrives.
    pub render_cpu: SimDuration,
    /// RNG seed.
    pub seed: u64,
}

impl Default for OlioParams {
    fn default() -> Self {
        OlioParams {
            clients: 100,
            think_time: SimDuration::from_millis(400),
            db_size: 40 << 30,
            static_files: 2_000,
            static_size: 128 << 10,
            queries_per_req: 2,
            write_fraction: 0.1,
            web_cpu: SimDuration::from_micros(1500),
            db_cpu: SimDuration::from_micros(200),
            render_cpu: SimDuration::from_micros(1000),
            seed: 1,
        }
    }
}

/// Per-tier recorders (Fig. 6) plus the end-to-end one (Fig. 4a/4d).
#[derive(Clone)]
pub struct OlioRecorders {
    /// End-to-end request latency.
    pub total: Rec,
    /// Web-tier time (PHP + static asset read at the frontend).
    pub web: Rec,
    /// Database-tier time (queries + inserts).
    pub db: Rec,
    /// File-server-tier time.
    pub file: Rec,
}

impl OlioRecorders {
    /// Fresh recorders that start recording at `after`.
    pub fn new(after: SimTime) -> Self {
        OlioRecorders {
            total: recorder(after),
            web: recorder(after),
            db: recorder(after),
            file: recorder(after),
        }
    }
}

struct Olio {
    p: OlioParams,
    web: VmRef,
    db: VmRef,
    file: VmRef,
    web_pages: Vec<FileId>,
    db_data: FileId,
    db_log: FileId,
    db_log_off: u64,
    statics: Vec<FileId>,
    zipf_db: Zipfian,
    zipf_static: Zipfian,
    rng: SimRng,
    recs: OlioRecorders,
}

type Shared = Rc<RefCell<Olio>>;

/// Deploy Olio across three VMs and start the client emulator.
pub fn spawn_olio(
    cl: &mut Cluster,
    s: &mut Sched,
    web: VmRef,
    db: VmRef,
    file: VmRef,
    p: OlioParams,
    recs: OlioRecorders,
) {
    let web_pages = provision_files(cl, web, 200, 8 << 10);
    let db_data = provision_files(cl, db, 1, p.db_size)[0];
    let db_log = provision_files(cl, db, 1, 1 << 30)[0];
    let statics = provision_files(cl, file, p.static_files, p.static_size);
    let st = Rc::new(RefCell::new(Olio {
        zipf_db: Zipfian::new((p.db_size / (16 << 10)).max(2), 0.9),
        zipf_static: Zipfian::new(p.static_files as u64, 0.8),
        rng: SimRng::new(p.seed),
        p,
        web,
        db,
        file,
        web_pages,
        db_data,
        db_log,
        db_log_off: 0,
        statics,
        recs,
    }));
    for c in 0..p.clients {
        client_think(Rc::clone(&st), s, c);
    }
}

fn client_think(st: Shared, s: &mut Sched, client: u32) {
    let (gap, stop) = {
        let mut x = st.borrow_mut();
        let stop = x.recs.total.borrow().stopped;
        let think = x.p.think_time;
        (x.rng.exp_duration(think), stop)
    };
    if stop {
        return;
    }
    s.schedule_in(gap, move |cl, s| {
        web_stage(st, cl, s, client, s.now());
    });
}

/// Stage 1 — web tier: PHP handling plus one hot static asset read.
fn web_stage(st: Shared, cl: &mut Cluster, s: &mut Sched, client: u32, arrival: SimTime) {
    let (web, cpu, op) = {
        let mut x = st.borrow_mut();
        let n = x.web_pages.len() as u64;
        let i = x.rng.below(n) as usize;
        let f = x.web_pages[i];
        (
            x.web,
            x.p.web_cpu,
            FileOp::Read {
                file: f,
                offset: 0,
                len: 8 << 10,
            },
        )
    };
    let vcpu = client % 2;
    let st2 = Rc::clone(&st);
    cl.run_cpu(
        s,
        web.machine,
        web.dom,
        vcpu,
        cpu,
        Box::new(move |cl, s| {
            let st3 = Rc::clone(&st2);
            cl.submit_op(
                s,
                web.machine,
                web.dom,
                vcpu,
                op,
                Some(Box::new(move |cl, s, _| {
                    let now = s.now();
                    {
                        let x = st3.borrow();
                        x.recs
                            .web
                            .borrow_mut()
                            .record(now, now.saturating_since(arrival), 8 << 10);
                    }
                    db_stage(st3, cl, s, client, arrival, now, 0);
                })),
            );
        }),
    );
}

/// Stage 2 — database tier: `queries_per_req` random-index reads and an
/// occasional event insert (log append).
fn db_stage(
    st: Shared,
    cl: &mut Cluster,
    s: &mut Sched,
    client: u32,
    arrival: SimTime,
    db_start: SimTime,
    done: u32,
) {
    let (db, cpu, op, more) = {
        let mut x = st.borrow_mut();
        if done < x.p.queries_per_req {
            let zipf = x.zipf_db.clone();
            let row = zipf.sample(&mut x.rng);
            let offset = (row * (16 << 10)) % (x.p.db_size - (16 << 10));
            (
                x.db,
                x.p.db_cpu,
                FileOp::Read {
                    file: x.db_data,
                    offset,
                    len: 16 << 10,
                },
                true,
            )
        } else {
            let wf = x.p.write_fraction;
            if x.rng.chance(wf) {
                let off = x.db_log_off;
                x.db_log_off = (x.db_log_off + (8 << 10)) % ((1 << 30) - (8 << 10));
                (
                    x.db,
                    x.p.db_cpu,
                    FileOp::Write {
                        file: x.db_log,
                        offset: off,
                        len: 8 << 10,
                    },
                    false,
                )
            } else {
                // No write: go straight to the file-server tier.
                let now = s.now();
                x.recs
                    .db
                    .borrow_mut()
                    .record(now, now.saturating_since(db_start), 0);
                drop(x);
                file_stage(st, cl, s, client, arrival, now);
                return;
            }
        }
    };
    let vcpu = client % 2;
    let st2 = Rc::clone(&st);
    cl.run_cpu(
        s,
        db.machine,
        db.dom,
        vcpu,
        cpu,
        Box::new(move |cl, s| {
            let st3 = Rc::clone(&st2);
            cl.submit_op(
                s,
                db.machine,
                db.dom,
                vcpu,
                op,
                Some(Box::new(move |cl, s, _| {
                    if more {
                        db_stage(st3, cl, s, client, arrival, db_start, done + 1);
                    } else {
                        let now = s.now();
                        {
                            let x = st3.borrow();
                            x.recs.db.borrow_mut().record(
                                now,
                                now.saturating_since(db_start),
                                8 << 10,
                            );
                        }
                        file_stage(st3, cl, s, client, arrival, now);
                    }
                })),
            );
        }),
    );
}

/// Stage 3 — file-server tier: fetch one static object.
fn file_stage(
    st: Shared,
    cl: &mut Cluster,
    s: &mut Sched,
    client: u32,
    arrival: SimTime,
    fs_start: SimTime,
) {
    let (file_vm, op, size) = {
        let mut x = st.borrow_mut();
        let zipf = x.zipf_static.clone();
        let idx = zipf.sample(&mut x.rng) as usize;
        let f = x.statics[idx.min(x.statics.len() - 1)];
        let sz = x.p.static_size;
        (
            x.file,
            FileOp::Read {
                file: f,
                offset: 0,
                len: sz,
            },
            sz,
        )
    };
    let vcpu = client % 2;
    let st2 = Rc::clone(&st);
    cl.submit_op(
        s,
        file_vm.machine,
        file_vm.dom,
        vcpu,
        op,
        Some(Box::new(move |cl, s, _| {
            let now = s.now();
            {
                let x = st2.borrow();
                x.recs
                    .file
                    .borrow_mut()
                    .record(now, now.saturating_since(fs_start), size);
            }
            render_stage(st2, cl, s, client, arrival);
        })),
    );
}

/// Stage 4 — web render, then record the end-to-end latency and think.
fn render_stage(st: Shared, cl: &mut Cluster, s: &mut Sched, client: u32, arrival: SimTime) {
    let (web, cpu) = {
        let x = st.borrow();
        (x.web, x.p.render_cpu)
    };
    let vcpu = client % 2;
    let st2 = Rc::clone(&st);
    cl.run_cpu(
        s,
        web.machine,
        web.dom,
        vcpu,
        cpu,
        Box::new(move |_cl, s| {
            let now = s.now();
            {
                let x = st2.borrow();
                x.recs
                    .total
                    .borrow_mut()
                    .record(now, now.saturating_since(arrival), 0);
            }
            client_think(st2, s, client);
        }),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_paper_shaped() {
        let p = OlioParams::default();
        assert_eq!(p.db_size, 40 << 30);
        assert!(p.write_fraction < 0.5, "Olio is read-mostly");
        assert!(p.queries_per_req >= 1);
    }
}
