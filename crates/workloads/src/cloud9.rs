//! Cloud9 — the CPU-intensive co-runner (distributed symbolic-execution
//! testing service). It mostly burns CPU, with light periodic I/O
//! (loading test targets, writing reports). The paper uses it to show
//! IOrchestra leaves CPU-bound workloads untouched (§5.2) and as the
//! compute half of the §5.5 mixed big-VM experiment.

use std::cell::RefCell;
use std::rc::Rc;

use iorch_guestos::{FileId, FileOp};
use iorch_hypervisor::{Cluster, Sched};
use iorch_simcore::{SimDuration, SimRng};

use crate::common::{provision_files, Rec, VmRef};

/// Cloud9 parameters.
#[derive(Clone, Copy, Debug)]
pub struct Cloud9Params {
    /// Worker threads (one per VCPU typically).
    pub threads: u32,
    /// First VCPU to pin threads onto.
    pub first_vcpu: u32,
    /// CPU burst per symbolic-execution step.
    pub burst: SimDuration,
    /// Probability a step does a small I/O after its burst.
    pub io_fraction: f64,
    /// Size of that I/O.
    pub io_size: u64,
    /// Total CPU seconds per thread before the job finishes
    /// (`f64::INFINITY` = unbounded).
    pub cpu_budget_secs: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Cloud9Params {
    fn default() -> Self {
        Cloud9Params {
            threads: 2,
            first_vcpu: 0,
            burst: SimDuration::from_millis(10),
            io_fraction: 0.05,
            io_size: 64 << 10,
            cpu_budget_secs: f64::INFINITY,
            seed: 1,
        }
    }
}

struct Cloud9 {
    p: Cloud9Params,
    vm: VmRef,
    scratch: FileId,
    rng: SimRng,
    spent: Vec<f64>,
    live_threads: u32,
    rec: Rec,
}

type Shared = Rc<RefCell<Cloud9>>;

/// Launch Cloud9 on a VM.
pub fn spawn_cloud9(cl: &mut Cluster, s: &mut Sched, vm: VmRef, p: Cloud9Params, rec: Rec) {
    let scratch = provision_files(cl, vm, 1, 1 << 30)[0];
    let st = Rc::new(RefCell::new(Cloud9 {
        rng: SimRng::new(p.seed),
        spent: vec![0.0; p.threads as usize],
        live_threads: p.threads,
        p,
        vm,
        scratch,
        rec,
    }));
    for t in 0..p.threads {
        step(Rc::clone(&st), cl, s, t);
    }
}

fn step(st: Shared, cl: &mut Cluster, s: &mut Sched, thread: u32) {
    let (vm, vcpu, burst, stop) = {
        let mut x = st.borrow_mut();
        let exhausted = x.spent[thread as usize] >= x.p.cpu_budget_secs;
        let stop = x.rec.borrow().stopped || exhausted;
        if exhausted {
            x.live_threads -= 1;
            if x.live_threads == 0 {
                x.rec.borrow_mut().finished = true;
            }
        }
        (x.vm, x.p.first_vcpu + thread, x.p.burst, stop)
    };
    if stop {
        return;
    }
    let started = s.now();
    let st2 = Rc::clone(&st);
    cl.run_cpu(
        s,
        vm.machine,
        vm.dom,
        vcpu,
        burst,
        Box::new(move |cl, s| {
            let (do_io, op) = {
                let mut x = st2.borrow_mut();
                x.spent[thread as usize] += x.p.burst.as_secs_f64();
                let now = s.now();
                x.rec
                    .borrow_mut()
                    .record(now, now.saturating_since(started), 0);
                let frac = x.p.io_fraction;
                if x.rng.chance(frac) {
                    let io_size = x.p.io_size;
                    let off = x.rng.below((1 << 30) - io_size);
                    (
                        true,
                        Some(FileOp::Write {
                            file: x.scratch,
                            offset: off,
                            len: x.p.io_size,
                        }),
                    )
                } else {
                    (false, None)
                }
            };
            if do_io {
                let st3 = Rc::clone(&st2);
                cl.submit_op(
                    s,
                    vm.machine,
                    vm.dom,
                    vcpu,
                    op.unwrap(),
                    Some(Box::new(move |cl, s, _| {
                        step(st3, cl, s, thread);
                    })),
                );
            } else {
                step(st2, cl, s, thread);
            }
        }),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_cpu_heavy() {
        let p = Cloud9Params::default();
        assert!(p.io_fraction < 0.2, "Cloud9 must be CPU-bound");
        assert!(p.burst >= SimDuration::from_millis(1));
    }
}
