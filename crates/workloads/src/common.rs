//! Shared workload infrastructure: VM handles, latency recorders, and
//! file provisioning helpers.

use std::cell::RefCell;
use std::rc::Rc;

use iorch_guestos::FileId;
use iorch_hypervisor::{Cluster, DomainId};
use iorch_metrics::{LatencyHistogram, SharedHub};
use iorch_simcore::{SimDuration, SimTime};

/// A VM somewhere in the cluster.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct VmRef {
    /// Machine index.
    pub machine: usize,
    /// Domain on that machine.
    pub dom: DomainId,
}

/// Collected results of one workload instance.
#[derive(Debug)]
pub struct Recorder {
    /// Latency histogram of recorded operations.
    pub hist: LatencyHistogram,
    /// Operations recorded.
    pub ops: u64,
    /// Payload bytes recorded.
    pub bytes: u64,
    /// Samples before this instant are dropped (warm-up).
    pub record_after: SimTime,
    /// Set by bounded workloads when their fixed problem size is done.
    pub finished: bool,
    /// Generators check this each cycle and stop when set.
    pub stopped: bool,
    /// Optional live-telemetry hub; every recorded op (including warm-up
    /// samples) is streamed to it before the `record_after` gate.
    pub live: Option<SharedHub>,
}

impl Recorder {
    /// Record one operation.
    pub fn record(&mut self, now: SimTime, latency: SimDuration, bytes: u64) {
        if let Some(hub) = &self.live {
            hub.borrow_mut().record_op(now, latency);
        }
        if now < self.record_after {
            return;
        }
        self.hist.record(latency);
        self.ops += 1;
        self.bytes += bytes;
    }

    /// Throughput in bytes/second between `record_after` and `now`.
    pub fn throughput_bps(&self, now: SimTime) -> f64 {
        let span = now.saturating_since(self.record_after).as_secs_f64();
        if span <= 0.0 {
            0.0
        } else {
            self.bytes as f64 / span
        }
    }

    /// Operations per second between `record_after` and `now`.
    pub fn ops_per_sec(&self, now: SimTime) -> f64 {
        let span = now.saturating_since(self.record_after).as_secs_f64();
        if span <= 0.0 {
            0.0
        } else {
            self.ops as f64 / span
        }
    }
}

/// Shared recorder handle.
pub type Rec = Rc<RefCell<Recorder>>;

/// Make a recorder that starts recording at `record_after`.
pub fn recorder(record_after: SimTime) -> Rec {
    Rc::new(RefCell::new(Recorder {
        hist: LatencyHistogram::new(),
        ops: 0,
        bytes: 0,
        record_after,
        finished: false,
        stopped: false,
        live: None,
    }))
}

/// Make a recorder that also streams every op to a live-telemetry hub.
pub fn recorder_live(record_after: SimTime, hub: SharedHub) -> Rec {
    let rec = recorder(record_after);
    rec.borrow_mut().live = Some(hub);
    rec
}

/// Create `count` files of `size` bytes on a VM's disk (setup phase; no
/// simulated I/O cost, as the paper pre-populates data sets before runs).
pub fn provision_files(cl: &mut Cluster, vm: VmRef, count: usize, size: u64) -> Vec<FileId> {
    let kernel = cl
        .machine_mut(vm.machine)
        .kernel_mut(vm.dom)
        .expect("provisioning a dead VM");
    (0..count)
        .map(|_| kernel.create_file(size).expect("disk too small"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_drops_warmup() {
        let rec = recorder(SimTime::from_millis(100));
        rec.borrow_mut()
            .record(SimTime::from_millis(50), SimDuration::from_micros(10), 100);
        rec.borrow_mut()
            .record(SimTime::from_millis(150), SimDuration::from_micros(10), 100);
        let r = rec.borrow();
        assert_eq!(r.ops, 1);
        assert_eq!(r.bytes, 100);
    }

    #[test]
    fn throughput_math() {
        let rec = recorder(SimTime::ZERO);
        rec.borrow_mut()
            .record(SimTime::from_millis(1), SimDuration::from_micros(10), 1000);
        let r = rec.borrow();
        assert!((r.throughput_bps(SimTime::from_secs(1)) - 1000.0).abs() < 1e-9);
        assert!((r.ops_per_sec(SimTime::from_secs(2)) - 0.5).abs() < 1e-9);
        assert_eq!(r.throughput_bps(SimTime::ZERO), 0.0);
    }
}
