//! YCSB over a Cassandra-like key-value store.
//!
//! The paper's YCSB1 (update-heavy, 50:50) and YCSB2 (read-mostly, 95:5)
//! core workloads \[13\] against multi-VM Cassandra data stores. The node
//! model captures the I/O shape that matters:
//!
//! * **reads** hit the sstable region at a Zipf-popular offset — hot keys
//!   live in the guest page cache, cold keys go to the device;
//! * **updates** append to the commit log (buffered sequential write) and
//!   fill a memtable; every `memtable_flush_bytes` the memtable is flushed
//!   as a large sequential write plus `sync()` — the write bursts that
//!   exercise flush control;
//! * **multi-node stores** forward requests whose key-owner is another
//!   node (and replicate writes), adding inter-node network hops — the
//!   scale-out cost of Fig. 7.
//!
//! Request arrivals are open-loop Poisson at a target rate, optionally
//! shaped into the synchronized bursts of §5.6 [5, 25].

use std::cell::RefCell;
use std::rc::Rc;

use iorch_guestos::{FileId, FileOp};
use iorch_hypervisor::{Cluster, Sched};
use iorch_netsim::{Network, NodeId};
use iorch_simcore::{SimDuration, SimRng, SimTime, Zipfian};

use crate::common::{Rec, VmRef};

/// Bursty-arrival shaping (paper §5.6): synchronized burst windows where
/// the rate is capped at `peak_factor`× the overall average.
#[derive(Clone, Copy, Debug)]
pub struct BurstParams {
    /// Cycle period.
    pub period: SimDuration,
    /// Burst window at the start of each cycle (50 or 100 ms).
    pub burst_len: SimDuration,
    /// Peak rate multiplier (paper: 10×).
    pub peak_factor: f64,
}

/// YCSB workload parameters.
#[derive(Clone, Copy, Debug)]
pub struct YcsbParams {
    /// Fraction of reads (0.5 for YCSB1, 0.95 for YCSB2).
    pub read_ratio: f64,
    /// Record size in bytes.
    pub record_size: u64,
    /// Number of records in the data set.
    pub records: u64,
    /// Zipfian skew (YCSB default 0.99).
    pub zipf_theta: f64,
    /// Target aggregate request rate (requests/second).
    pub rate_per_sec: f64,
    /// Memtable flush threshold in bytes.
    pub memtable_flush_bytes: u64,
    /// Per-op CPU cost (parse, serialize, memtable update).
    pub op_cpu: SimDuration,
    /// Stop after this many operations (bounded runs); `u64::MAX` = run
    /// until the recorder is stopped.
    pub max_ops: u64,
    /// Inter-VM RPC delay for co-located nodes (virtio-net loopback);
    /// replication acks ride on this when no network model is attached.
    pub ipc_delay: SimDuration,
    /// Burst shaping, if any.
    pub burst: Option<BurstParams>,
    /// RNG seed.
    pub seed: u64,
}

impl YcsbParams {
    /// YCSB workload A analogue — update heavy, 50:50 (the paper's YCSB1).
    pub fn ycsb1(rate_per_sec: f64, seed: u64) -> Self {
        YcsbParams {
            read_ratio: 0.5,
            record_size: 1024,
            records: 4_000_000, // ~4 GB per node: exceeds the 4 GB VM cache
            zipf_theta: 0.99,
            rate_per_sec,
            memtable_flush_bytes: 32 << 20,
            op_cpu: SimDuration::from_micros(40),
            max_ops: u64::MAX,
            ipc_delay: SimDuration::from_micros(120),
            burst: None,
            seed,
        }
    }

    /// YCSB workload B analogue — read mostly, 95:5 (the paper's YCSB2).
    pub fn ycsb2(rate_per_sec: f64, seed: u64) -> Self {
        YcsbParams {
            read_ratio: 0.95,
            ..Self::ycsb1(rate_per_sec, seed)
        }
    }

    /// Add the §5.6 burst shaping.
    pub fn with_burst(mut self, burst_len: SimDuration) -> Self {
        self.burst = Some(BurstParams {
            period: SimDuration::from_secs(1),
            burst_len,
            peak_factor: 10.0,
        });
        self
    }

    /// Bound the run to a fixed number of operations.
    pub fn with_max_ops(mut self, n: u64) -> Self {
        self.max_ops = n;
        self
    }
}

struct Node {
    vm: VmRef,
    data: FileId,
    commitlog: FileId,
    commit_off: u64,
    commitlog_size: u64,
    sstable_off: u64,
    data_size: u64,
    bytes_since_flush: u64,
    net: Option<NodeId>,
}

struct Ycsb {
    p: YcsbParams,
    nodes: Vec<Node>,
    rng: SimRng,
    zipf: Zipfian,
    rec: Rec,
    net: Option<Rc<RefCell<Network>>>,
    issued: u64,
    completed: u64,
    next_coord: usize,
    next_vcpu: u32,
}

type Shared = Rc<RefCell<Ycsb>>;

/// Launch a YCSB client against a Cassandra-like store spanning `nodes`.
/// Each node gets a data file, commit log and sstable region provisioned
/// on its virtual disk. `net` + per-node ids enable inter-node hops for
/// multi-machine stores.
pub fn spawn_ycsb(
    cl: &mut Cluster,
    s: &mut Sched,
    node_vms: &[VmRef],
    net: Option<(Rc<RefCell<Network>>, Vec<NodeId>)>,
    p: YcsbParams,
    rec: Rec,
) {
    assert!(!node_vms.is_empty());
    let (net_rc, net_ids) = match net {
        Some((n, ids)) => {
            assert_eq!(ids.len(), node_vms.len());
            (Some(n), ids.into_iter().map(Some).collect())
        }
        None => (None, vec![None; node_vms.len()]),
    };
    let per_node_records = p.records / node_vms.len() as u64;
    let nodes: Vec<Node> = node_vms
        .iter()
        .zip(net_ids)
        .map(|(&vm, net_id)| {
            let kernel = cl
                .machine_mut(vm.machine)
                .kernel_mut(vm.dom)
                .expect("dead VM");
            let data_size = per_node_records * p.record_size;
            let data = kernel.create_file(data_size.max(1 << 20)).unwrap();
            let commitlog_size = 1 << 30;
            let commitlog = kernel.create_file(commitlog_size).unwrap();
            Node {
                vm,
                data,
                commitlog,
                commit_off: 0,
                commitlog_size,
                sstable_off: 0,
                data_size,
                bytes_since_flush: 0,
                net: net_id,
            }
        })
        .collect();
    let state = Rc::new(RefCell::new(Ycsb {
        rng: SimRng::new(p.seed),
        zipf: Zipfian::new(p.records.max(2), p.zipf_theta),
        nodes,
        rec,
        net: net_rc,
        issued: 0,
        completed: 0,
        next_coord: 0,
        next_vcpu: 0,
        p,
    }));
    schedule_next_arrival(&state, s);
}

fn current_rate(p: &YcsbParams, now: SimTime) -> f64 {
    match p.burst {
        None => p.rate_per_sec,
        Some(b) => {
            let phase = SimDuration::from_nanos(now.as_nanos() % b.period.as_nanos().max(1));
            let peak = p.rate_per_sec * b.peak_factor;
            // Requests-per-cycle is conserved: the burst carries what the
            // peak cap allows, the remainder spreads over the off window.
            let in_burst = peak * b.burst_len.as_secs_f64();
            let per_cycle = p.rate_per_sec * b.period.as_secs_f64();
            if phase < b.burst_len {
                peak
            } else {
                let off_window = (b.period - b.burst_len).as_secs_f64();
                ((per_cycle - in_burst).max(0.0) / off_window).max(0.01)
            }
        }
    }
}

fn schedule_next_arrival(state: &Shared, s: &mut Sched) {
    let st = Rc::clone(state);
    let (gap, stop) = {
        let mut y = state.borrow_mut();
        let stopped = y.rec.borrow().stopped || y.issued >= y.p.max_ops;
        let now = s.now();
        let rate = current_rate(&y.p, now).max(0.01);
        let mut gap = y.rng.exp_duration(SimDuration::from_secs_f64(1.0 / rate));
        // A gap sampled in a quiet window must not sleep through the next
        // burst (with an all-in-burst shape the off rate is ~0 and the
        // naive sample would jump past every future cycle): clamp to the
        // next cycle boundary, where the rate is resampled.
        if let Some(b) = y.p.burst {
            let period_ns = b.period.as_nanos().max(1);
            let to_boundary = SimDuration::from_nanos(period_ns - now.as_nanos() % period_ns);
            if gap > to_boundary {
                gap = to_boundary;
            }
        }
        (gap, stopped)
    };
    if stop {
        return;
    }
    s.schedule_in(gap, move |cl, s| {
        issue_op(&st, cl, s);
        schedule_next_arrival(&st, s);
    });
}

fn issue_op(state: &Shared, cl: &mut Cluster, s: &mut Sched) {
    let arrival = s.now();
    let (coord_idx, owner_idx, is_read, key, vcpu) = {
        let mut y = state.borrow_mut();
        if y.rec.borrow().stopped || y.issued >= y.p.max_ops {
            return;
        }
        y.issued += 1;
        let coord = y.next_coord;
        y.next_coord = (y.next_coord + 1) % y.nodes.len();
        let zipf = y.zipf.clone();
        let key = zipf.sample(&mut y.rng);
        let owner = (key % y.nodes.len() as u64) as usize;
        let read = {
            let r = y.p.read_ratio;
            y.rng.chance(r)
        };
        let vcpu = y.next_vcpu;
        y.next_vcpu = y.next_vcpu.wrapping_add(1);
        (coord, owner, read, key, vcpu)
    };
    // Forward hop if the owner is a different node on another machine.
    let st = Rc::clone(state);
    let hop = {
        let y = state.borrow_mut();
        let remote = owner_idx != coord_idx
            && y.nodes[owner_idx].vm.machine != y.nodes[coord_idx].vm.machine;
        if remote {
            let (src, dst) = (y.nodes[coord_idx].net, y.nodes[owner_idx].net);
            if let (Some(net), Some(src), Some(dst)) = (y.net.clone(), src, dst) {
                let record = y.p.record_size;
                Some(net.borrow_mut().transfer_time(src, dst, record, arrival))
            } else {
                None
            }
        } else {
            None
        }
    };
    let run = move |cl: &mut Cluster, s: &mut Sched| {
        run_on_owner(
            &st, cl, s, owner_idx, coord_idx, is_read, key, vcpu, arrival,
        );
    };
    match hop {
        Some(at) => {
            s.schedule_at(at, run);
        }
        None => run(cl, s),
    }
}

#[allow(clippy::too_many_arguments)]
fn run_on_owner(
    state: &Shared,
    cl: &mut Cluster,
    s: &mut Sched,
    owner_idx: usize,
    coord_idx: usize,
    is_read: bool,
    key: u64,
    vcpu: u32,
    arrival: SimTime,
) {
    let (vm, cpu) = {
        let y = state.borrow();
        (y.nodes[owner_idx].vm, y.p.op_cpu)
    };
    let st = Rc::clone(state);
    cl.run_cpu(
        s,
        vm.machine,
        vm.dom,
        vcpu,
        cpu,
        Box::new(move |cl, s| {
            do_io(
                &st, cl, s, owner_idx, coord_idx, is_read, key, vcpu, arrival,
            );
        }),
    );
}

#[allow(clippy::too_many_arguments)]
fn do_io(
    state: &Shared,
    cl: &mut Cluster,
    s: &mut Sched,
    owner_idx: usize,
    coord_idx: usize,
    is_read: bool,
    key: u64,
    vcpu: u32,
    arrival: SimTime,
) {
    let (vm, op) = {
        let mut y = state.borrow_mut();
        let n_nodes = y.nodes.len() as u64;
        let record = y.p.record_size;
        let node = &mut y.nodes[owner_idx];
        let vm = node.vm;
        let op = if is_read {
            let local_key = key / n_nodes;
            let offset = (local_key * record) % node.data_size.max(record);
            FileOp::Read {
                file: node.data,
                offset,
                len: record,
            }
        } else {
            let off = node.commit_off;
            node.commit_off = (node.commit_off + record) % (node.commitlog_size - record);
            FileOp::Write {
                file: node.commitlog,
                offset: off,
                len: record,
            }
        };
        (vm, op)
    };
    let st = Rc::clone(state);
    cl.submit_op(
        s,
        vm.machine,
        vm.dom,
        vcpu,
        op,
        Some(Box::new(move |cl, s, _r| {
            finish_op(&st, cl, s, owner_idx, coord_idx, is_read, arrival);
        })),
    );
}

fn finish_op(
    state: &Shared,
    cl: &mut Cluster,
    s: &mut Sched,
    owner_idx: usize,
    coord_idx: usize,
    is_read: bool,
    arrival: SimTime,
) {
    // Post-write bookkeeping: memtable accounting and flushes; updates on
    // a multi-node store additionally wait for the replica's commit-log
    // write (Cassandra replication factor 2, consistency ONE at the
    // replica set).
    if !is_read {
        let waits_for_replica = after_update(state, cl, s, owner_idx, coord_idx, arrival);
        if waits_for_replica {
            return; // the replica ack path finishes the op
        }
    }
    finish_read_path(state, cl, s, owner_idx, coord_idx, arrival);
}

/// Response hop back to the coordinator (if forwarded), then record.
fn finish_read_path(
    state: &Shared,
    cl: &mut Cluster,
    s: &mut Sched,
    owner_idx: usize,
    coord_idx: usize,
    arrival: SimTime,
) {
    let hop_back = {
        let y = state.borrow_mut();
        let remote = owner_idx != coord_idx
            && y.nodes[owner_idx].vm.machine != y.nodes[coord_idx].vm.machine;
        if remote {
            let (src, dst) = (y.nodes[owner_idx].net, y.nodes[coord_idx].net);
            if let (Some(net), Some(src), Some(dst)) = (y.net.clone(), src, dst) {
                let record = y.p.record_size;
                Some(net.borrow_mut().transfer_time(src, dst, record, s.now()))
            } else {
                None
            }
        } else {
            None
        }
    };
    let st = Rc::clone(state);
    let record_done = move |_cl: &mut Cluster, s: &mut Sched| {
        let mut y = st.borrow_mut();
        let now = s.now();
        let bytes = y.p.record_size;
        y.rec
            .borrow_mut()
            .record(now, now.saturating_since(arrival), bytes);
        y.completed += 1;
        if y.completed >= y.p.max_ops {
            y.rec.borrow_mut().finished = true;
        }
    };
    match hop_back {
        Some(at) => {
            s.schedule_at(at, record_done);
        }
        None => record_done(cl, s),
    }
}

fn after_update(
    state: &Shared,
    cl: &mut Cluster,
    s: &mut Sched,
    owner_idx: usize,
    coord_idx: usize,
    arrival: SimTime,
) -> bool {
    // Memtable fill; flush as a big sequential sstable write + sync when
    // the threshold is crossed.
    let flush = {
        let mut y = state.borrow_mut();
        let record = y.p.record_size;
        let threshold = y.p.memtable_flush_bytes;
        let data_size = y.nodes[owner_idx].data_size;
        let node = &mut y.nodes[owner_idx];
        node.bytes_since_flush += record;
        if node.bytes_since_flush >= threshold {
            node.bytes_since_flush = 0;
            let off = node.sstable_off % data_size.saturating_sub(threshold).max(1);
            node.sstable_off += threshold;
            Some((node.vm, node.data, off, threshold))
        } else {
            None
        }
    };
    if let Some((vm, file, offset, len)) = flush {
        // Cassandra's default commit-log mode is periodic sync: the
        // memtable flush is a large buffered write left to the OS
        // writeback path — exactly the dirty mass Algorithm 1 manages.
        cl.submit_op(
            s,
            vm.machine,
            vm.dom,
            0,
            FileOp::Write { file, offset, len },
            None,
        );
    }
    // Synchronous replication to the next node of the store: the update
    // acks only once the replica has the commit-log write.
    let repl = {
        let mut y = state.borrow_mut();
        if y.nodes.len() > 1 {
            let record = y.p.record_size;
            let next = (owner_idx + 1) % y.nodes.len();
            let ipc = y.p.ipc_delay;
            // Cross-machine replicas ride the network model; co-located
            // ones pay the loopback IPC delay.
            let hop = match (y.net.clone(), y.nodes[owner_idx].net, y.nodes[next].net) {
                (Some(net), Some(src), Some(dst))
                    if y.nodes[owner_idx].vm.machine != y.nodes[next].vm.machine =>
                {
                    net.borrow_mut().transfer_time(src, dst, record, s.now())
                }
                _ => s.now() + ipc,
            };
            let node = &mut y.nodes[next];
            let off = node.commit_off;
            node.commit_off = (node.commit_off + record) % (node.commitlog_size - record);
            Some((node.vm, node.commitlog, off, record, hop, ipc))
        } else {
            None
        }
    };
    if let Some((vm, file, offset, len, hop, ipc)) = repl {
        let st = Rc::clone(state);
        s.schedule_at(hop, move |cl, s| {
            let st2 = Rc::clone(&st);
            cl.submit_op(
                s,
                vm.machine,
                vm.dom,
                1,
                FileOp::Write { file, offset, len },
                Some(Box::new(move |cl, s, _| {
                    // Ack back to the owner, then the normal response path.
                    let at = s.now() + ipc;
                    let st3 = Rc::clone(&st2);
                    s.schedule_at(at, move |cl, s| {
                        replica_acked(&st3, cl, s, owner_idx, coord_idx, arrival);
                    });
                    let _ = cl;
                })),
            );
        });
        true
    } else {
        false
    }
}

/// The replica persisted the update: run the response hop + recording.
fn replica_acked(
    state: &Shared,
    cl: &mut Cluster,
    s: &mut Sched,
    owner_idx: usize,
    coord_idx: usize,
    arrival: SimTime,
) {
    finish_read_path(state, cl, s, owner_idx, coord_idx, arrival);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets() {
        let a = YcsbParams::ycsb1(1000.0, 1);
        let b = YcsbParams::ycsb2(1000.0, 1);
        assert_eq!(a.read_ratio, 0.5);
        assert_eq!(b.read_ratio, 0.95);
        assert_eq!(a.record_size, b.record_size);
        let c = a.with_burst(SimDuration::from_millis(50)).with_max_ops(100);
        assert!(c.burst.is_some());
        assert_eq!(c.max_ops, 100);
    }

    #[test]
    fn burst_rate_peaks_then_dips() {
        let p = YcsbParams::ycsb1(1000.0, 1).with_burst(SimDuration::from_millis(50));
        let in_burst = current_rate(&p, SimTime::from_millis(10));
        let off_burst = current_rate(&p, SimTime::from_millis(500));
        assert!((in_burst - 10_000.0).abs() < 1e-6, "in={in_burst}");
        assert!(off_burst < 1000.0, "off={off_burst}");
        // Mean over the cycle is conserved (~1000 rps).
        let mean = (in_burst * 0.05 + off_burst * 0.95) / 1.0;
        assert!((mean - 1000.0).abs() < 10.0, "mean={mean}");
    }

    #[test]
    fn unshaped_rate_is_flat() {
        let p = YcsbParams::ycsb1(500.0, 1);
        assert_eq!(current_rate(&p, SimTime::ZERO), 500.0);
        assert_eq!(current_rate(&p, SimTime::from_millis(123)), 500.0);
    }
}
