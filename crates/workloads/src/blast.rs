//! mpiBLAST — parallel sequence search over a partitioned database [3, 19].
//!
//! Each worker VM owns one partition of the NCBI NT/NR database and scans
//! it sequentially per query (BLAST "sequentially checks the patterns" —
//! §5.2), alternating large reads with CPU-heavy alignment work, then
//! reports hits to the master over the network. More machines mean smaller
//! partitions per query but extra coordination traffic.

use std::cell::RefCell;
use std::rc::Rc;

use iorch_guestos::{FileId, FileOp};
use iorch_hypervisor::{Cluster, Sched};
use iorch_netsim::{Network, NodeId};
use iorch_simcore::{SimDuration, SimTime};

use crate::common::{provision_files, Rec, VmRef};

/// mpiBLAST parameters.
#[derive(Clone, Copy, Debug)]
pub struct BlastParams {
    /// Total database size, split evenly across workers (NT is ~60 GB; we
    /// scan a window per query).
    pub db_bytes_per_worker: u64,
    /// Bytes scanned per query per worker.
    pub scan_per_query: u64,
    /// Read size per I/O.
    pub read_size: u64,
    /// CPU per byte scanned (alignment work), as time per MiB.
    pub cpu_per_mib: SimDuration,
    /// Result-message size sent to the master after each query.
    pub result_msg: u64,
    /// Number of queries (`u64::MAX` = run until stopped).
    pub max_queries: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BlastParams {
    fn default() -> Self {
        BlastParams {
            db_bytes_per_worker: 4 << 30,
            scan_per_query: 64 << 20,
            read_size: 2 << 20,
            cpu_per_mib: SimDuration::from_micros(700),
            result_msg: 64 << 10,
            max_queries: u64::MAX,
            seed: 1,
        }
    }
}

struct Blast {
    p: BlastParams,
    workers: Vec<VmRef>,
    dbs: Vec<FileId>,
    positions: Vec<u64>,
    net: Option<Rc<RefCell<Network>>>,
    net_ids: Vec<Option<NodeId>>,
    master_net: Option<NodeId>,
    /// Per-query outstanding worker count (barrier at the master).
    outstanding: u64,
    queries_done: u64,
    rec: Rec,
}

type Shared = Rc<RefCell<Blast>>;

/// Launch mpiBLAST over `workers` (worker 0's machine hosts the master).
/// `net` carries result messages for multi-machine runs.
pub fn spawn_blast(
    cl: &mut Cluster,
    s: &mut Sched,
    workers: &[VmRef],
    net: Option<(Rc<RefCell<Network>>, Vec<NodeId>, NodeId)>,
    p: BlastParams,
    rec: Rec,
) {
    assert!(!workers.is_empty());
    let dbs: Vec<FileId> = workers
        .iter()
        .map(|&vm| provision_files(cl, vm, 1, p.db_bytes_per_worker)[0])
        .collect();
    let (net_rc, net_ids, master) = match net {
        Some((n, ids, master)) => {
            assert_eq!(ids.len(), workers.len());
            (Some(n), ids.into_iter().map(Some).collect(), Some(master))
        }
        None => (None, vec![None; workers.len()], None),
    };
    let st = Rc::new(RefCell::new(Blast {
        positions: vec![0; workers.len()],
        outstanding: 0,
        queries_done: 0,
        workers: workers.to_vec(),
        dbs,
        net: net_rc,
        net_ids,
        master_net: master,
        p,
        rec,
    }));
    start_query(&st, cl, s);
}

fn start_query(state: &Shared, cl: &mut Cluster, s: &mut Sched) {
    let n = {
        let mut x = state.borrow_mut();
        if x.rec.borrow().stopped || x.queries_done >= x.p.max_queries {
            return;
        }
        x.outstanding = x.workers.len() as u64;
        x.workers.len()
    };
    for w in 0..n {
        worker_scan(Rc::clone(state), cl, s, w, 0);
    }
}

fn worker_scan(st: Shared, cl: &mut Cluster, s: &mut Sched, worker: usize, scanned: u64) {
    let (vm, op, cpu, done_scan) = {
        let mut x = st.borrow_mut();
        if x.rec.borrow().stopped {
            return;
        }
        if scanned >= x.p.scan_per_query {
            (x.workers[worker], None, SimDuration::ZERO, true)
        } else {
            let rsz = x.p.read_size;
            let dbsz = x.p.db_bytes_per_worker;
            let pos = x.positions[worker];
            let offset = pos % (dbsz - rsz).max(1);
            x.positions[worker] = pos + rsz;
            let cpu = x.p.cpu_per_mib.mul_f64(rsz as f64 / (1 << 20) as f64);
            (
                x.workers[worker],
                Some(FileOp::Read {
                    file: x.dbs[worker],
                    offset,
                    len: rsz,
                }),
                cpu,
                false,
            )
        }
    };
    if done_scan {
        report_to_master(st, cl, s, worker);
        return;
    }
    let op = op.unwrap();
    let started = s.now();
    let st2 = Rc::clone(&st);
    cl.submit_op(
        s,
        vm.machine,
        vm.dom,
        0,
        op,
        Some(Box::new(move |cl, s, _| {
            let now = s.now();
            let rsz = {
                let x = st2.borrow();
                let rsz = x.p.read_size;
                // The figure-7 metric: per-I/O latency at the worker.
                x.rec
                    .borrow_mut()
                    .record(now, now.saturating_since(started), rsz);
                rsz
            };
            // Alignment CPU on the freshly read block.
            let st3 = Rc::clone(&st2);
            let cpu = {
                let x = st2.borrow();
                x.p.cpu_per_mib.mul_f64(rsz as f64 / (1 << 20) as f64)
            };
            cl.run_cpu(
                s,
                vm.machine,
                vm.dom,
                0,
                cpu,
                Box::new(move |cl, s| {
                    worker_scan(st3, cl, s, worker, scanned + rsz);
                }),
            );
        })),
    );
    let _ = cpu;
}

fn report_to_master(st: Shared, cl: &mut Cluster, s: &mut Sched, worker: usize) {
    let delivery: SimTime = {
        let x = st.borrow_mut();
        let msg = x.p.result_msg;
        match (x.net.clone(), x.net_ids[worker], x.master_net) {
            (Some(net), Some(src), Some(dst)) => {
                net.borrow_mut().transfer_time(src, dst, msg, s.now())
            }
            _ => s.now(),
        }
    };
    let st2 = Rc::clone(&st);
    s.schedule_at(delivery, move |cl, s| {
        let all_done = {
            let mut x = st2.borrow_mut();
            x.outstanding -= 1;
            if x.outstanding == 0 {
                x.queries_done += 1;
                if x.queries_done >= x.p.max_queries {
                    x.rec.borrow_mut().finished = true;
                }
                true
            } else {
                false
            }
        };
        if all_done {
            start_query(&st2, cl, s);
        }
    });
    let _ = cl;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let p = BlastParams::default();
        assert!(p.scan_per_query >= p.read_size);
        assert!(p.db_bytes_per_worker > p.scan_per_query);
    }
}
