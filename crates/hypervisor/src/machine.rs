//! The composed machine model and the cluster world type.
//!
//! A [`Machine`] is one IOrchestra-capable physical host: system store,
//! NUMA topology, storage subsystem, per-domain guest kernels and rings,
//! plus (depending on [`IoPathMode`]) either per-domain paravirt backend
//! threads or dedicated polling I/O cores. A [`Cluster`] is the simulation
//! world: one or more machines driven by a single
//! [`Scheduler<Cluster>`](iorch_simcore::Scheduler).
//!
//! The policy layer (the `iorchestra` crate) plugs in through
//! [`ControlPlane`]: the machine routes guest-kernel signals and system-
//! store watch events to it, and it acts back through the `cp_*` action
//! methods — exactly the paper's monitoring/management-module split.

use std::collections::{BTreeMap, HashMap};
use std::rc::Rc;

use iorch_guestos::{CompletedOp, FileOp, GuestConfig, GuestKernel, KernelSignal, OpClass, OpId};
use iorch_metrics::LatencyHistogram;
use iorch_simcore::trace::TraceEventKind;
use iorch_simcore::{trace_event, FaultPlan, Scheduler, SimDuration, SimRng, SimTime};
use iorch_storage::{IoRequest, StorageSubsystem, StreamId};

use crate::cpu::CpuAccounting;
use crate::domain::{DomainId, VmSpec};
use crate::iocore::{IoCore, IoCoreParams};
use crate::numa::{CoreId, NumaTopology, PlacementPolicy};
use crate::ring::{Ring, RingPush};
use crate::xenstore::{Perms, StoreQuota, WatchEvent, XenStore};

/// Scheduler over the cluster world.
pub type Sched = Scheduler<Cluster>;

/// Continuation invoked when a file operation completes.
pub type OpWaiter = Box<dyn FnOnce(&mut Cluster, &mut Sched, OpResult)>;

/// Continuation invoked when a CPU work item finishes.
pub type CpuWaiter = Box<dyn FnOnce(&mut Cluster, &mut Sched)>;

/// How block I/O reaches the host — the axis the paper's comparisons vary.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum IoPathMode {
    /// Stock paravirtualization: doorbells, per-domain backend threads on
    /// shared cores, interrupt completions (Baseline and DIF).
    Paravirt,
    /// Dedicated polling I/O cores.
    DedicatedCores {
        /// `false`: one core on socket 0, equal shares (SDC, which assumes
        /// single-socket VMs). `true`: one core per socket with per-VM
        /// buffers and policy-programmed quanta (IOrchestra §3.3).
        per_socket: bool,
    },
}

/// Virtualization-overhead timing constants.
#[derive(Clone, Copy, Debug)]
pub struct VirtTiming {
    /// Doorbell → backend wakeup (event channel + context switch).
    pub notify_latency: SimDuration,
    /// Paravirt backend fixed cost per request (VM exit, grant ops).
    pub backend_per_req: SimDuration,
    /// Paravirt backend copy bandwidth on shared cores, bytes/s.
    pub backend_copy_bw: u64,
    /// Completion interrupt delivery to the guest (paravirt).
    pub irq_latency: SimDuration,
    /// Completion delivery when a polling core handles it.
    pub polled_completion_latency: SimDuration,
    /// XenBus watch-event delivery latency.
    pub xenbus_latency: SimDuration,
}

impl Default for VirtTiming {
    fn default() -> Self {
        VirtTiming {
            notify_latency: SimDuration::from_micros(28),
            backend_per_req: SimDuration::from_micros(11),
            backend_copy_bw: 3_200_000_000,
            irq_latency: SimDuration::from_micros(18),
            polled_completion_latency: SimDuration::from_micros(4),
            xenbus_latency: SimDuration::from_micros(20),
        }
    }
}

/// Machine-level configuration.
#[derive(Clone, Copy, Debug)]
pub struct MachineConfig {
    /// RNG seed for this machine's noise sources.
    pub seed: u64,
    /// NUMA sockets.
    pub sockets: usize,
    /// Cores per socket.
    pub cores_per_socket: usize,
    /// I/O path (baseline paravirt vs dedicated cores).
    pub io_mode: IoPathMode,
    /// Timing constants.
    pub timing: VirtTiming,
    /// I/O core cost model (used in dedicated modes).
    pub iocore: IoCoreParams,
}

impl MachineConfig {
    /// The paper's testbed shape with a given I/O mode.
    pub fn paper_testbed(seed: u64, io_mode: IoPathMode) -> Self {
        MachineConfig {
            seed,
            sockets: 2,
            cores_per_socket: 6,
            io_mode,
            timing: VirtTiming::default(),
            iocore: IoCoreParams::default(),
        }
    }
}

/// Result handed to an op's completion waiter.
#[derive(Clone, Copy, Debug)]
pub struct OpResult {
    /// Machine index.
    pub machine: usize,
    /// Owning domain.
    pub dom: DomainId,
    /// The op.
    pub op: OpId,
    /// Op class.
    pub class: OpClass,
    /// Submission time.
    pub started: SimTime,
    /// Completion time.
    pub finished: SimTime,
}

impl OpResult {
    /// End-to-end latency of the op.
    pub fn latency(&self) -> SimDuration {
        self.finished.saturating_since(self.started)
    }
}

/// The pluggable policy layer (Baseline / SDC / DIF / IOrchestra live in
/// the `iorchestra` crate).
pub trait ControlPlane {
    /// Short name for reports.
    fn name(&self) -> &'static str;
    /// If `Some`, the machine invokes [`ControlPlane::on_tick`] with this
    /// period (the monitoring module's sampling interval).
    fn tick_period(&self) -> Option<SimDuration> {
        None
    }
    /// A domain was created (register store keys, set quanta, …).
    fn on_domain_created(&mut self, _m: &mut Machine, _s: &mut Sched, _dom: DomainId) {}
    /// A domain is being destroyed.
    fn on_domain_destroyed(&mut self, _m: &mut Machine, _s: &mut Sched, _dom: DomainId) {}
    /// A guest kernel raised a signal (congestion query, dirty status, …).
    fn on_kernel_signal(
        &mut self,
        m: &mut Machine,
        s: &mut Sched,
        dom: DomainId,
        sig: KernelSignal,
    );
    /// A system-store watch fired (delivered after XenBus latency).
    fn on_store_event(&mut self, _m: &mut Machine, _s: &mut Sched, _ev: WatchEvent) {}
    /// Periodic monitoring tick.
    fn on_tick(&mut self, _m: &mut Machine, _s: &mut Sched) {}
    /// The management half of the plane crashed: drop every piece of
    /// in-memory decision state. The machine has already unregistered the
    /// plane's watches; ticks and dom0-owned deliveries are suppressed
    /// until [`ControlPlane::on_recover`]. Guest-driver state is not
    /// affected — it lives in the guests, not dom0's toolstack.
    fn on_crash(&mut self, _m: &mut Machine, _s: &mut Sched) {}
    /// The management half restarted after a crash: rebuild decision state
    /// from the store (the single source of truth) and re-arm watches.
    fn on_recover(&mut self, _m: &mut Machine, _s: &mut Sched) {}
}

/// One guest VM as the hypervisor sees it.
pub struct Domain {
    /// Identity.
    pub id: DomainId,
    /// Sizing.
    pub spec: VmSpec,
    /// The simulated guest kernel.
    pub kernel: GuestKernel,
    /// One core per VCPU (placement result).
    pub cores: Vec<CoreId>,
    vcpu_busy: Vec<SimTime>,
    ring: Ring,
    backend_busy_until: SimTime,
    /// Policy rate limit on backend dispatch (bytes/sec); `None` (the
    /// default) disables the limiter entirely.
    rate_limit_bps: Option<u64>,
    /// Rate-limiter ledger: earliest time the next dispatched request may
    /// start service (a token bucket expressed as a time horizon).
    rate_ready_at: SimTime,
    vdisk_base: u64,
    timer_at: SimTime,
    created_at: SimTime,
    /// Dense machine-assigned slot index (recycled LIFO on destroy).
    /// Control planes key per-domain SoA state on it; [`DomainId`]s are
    /// never reused, slots are.
    slot: usize,
    /// Per-socket I/O routing weights (co-scheduler output). Empty means
    /// "route to the issuing VCPU's socket".
    route_weights: Vec<f64>,
    op_vcpu: HashMap<OpId, u32>,
    op_waiters: HashMap<OpId, OpWaiter>,
}

impl Domain {
    /// Which socket a VCPU lives on (given a topology).
    pub fn vcpu_socket(&self, topo: &NumaTopology, vcpu: u32) -> usize {
        let core = self.cores[vcpu as usize % self.cores.len()];
        topo.socket_of(core)
    }

    /// When this domain was created.
    pub fn created_at(&self) -> SimTime {
        self.created_at
    }

    /// The domain's dense slot index (see [`Machine::slot_of`]).
    pub fn slot(&self) -> usize {
        self.slot
    }
}

/// One physical host.
pub struct Machine {
    /// Index of this machine inside the cluster.
    pub idx: usize,
    /// Configuration.
    pub cfg: MachineConfig,
    /// The system store (XenStore analogue).
    pub store: XenStore,
    /// Host storage subsystem.
    pub storage: StorageSubsystem,
    /// CPU topology and placement state.
    pub topology: NumaTopology,
    /// CPU busy-time ledger.
    pub cpu: CpuAccounting,
    /// Dedicated polling cores (empty in paravirt mode).
    pub iocores: Vec<IoCore>,
    /// Deterministic noise source.
    pub rng: SimRng,
    domains: BTreeMap<DomainId, Domain>,
    /// FIFO availability time of each physical core for VCPU work.
    core_busy: Vec<SimTime>,
    next_domid: u32,
    /// Free dense slots from destroyed domains, reused LIFO so the slot
    /// space stays as compact as the peak concurrent domain count.
    slot_free: Vec<usize>,
    /// High-water slot count: every live domain's slot is `< slot_high`.
    slot_high: usize,
    /// Bumped on every domain create/destroy — an O(1) staleness check
    /// for control planes mirroring the domain set in slot-indexed state.
    domain_gen: u64,
    vdisk_cursor: u64,
    stream_to_dom: HashMap<StreamId, DomainId>,
    control: Option<Box<dyn ControlPlane>>,
    device_event_at: SimTime,
    pending_signals: Vec<(DomainId, KernelSignal)>,
    pending_results: Vec<(OpResult, Option<OpWaiter>)>,
    io_hist: BTreeMap<DomainId, LatencyHistogram>,
    io_bytes: BTreeMap<DomainId, u64>,
    ops_completed: BTreeMap<DomainId, u64>,
    /// Re-entrancy guard for [`Cluster::drain_results`]: a waiter that
    /// submits an op whose completion is synchronous (pure cache hit) must
    /// not recurse — the outer drain loop picks the new result up.
    draining: bool,
    /// Installed fault plan (watch-delivery faults); `None` in normal runs,
    /// so the event path pays only this `Option` check.
    faults: Option<FaultPlan>,
    /// Whether the management half of the control plane is crashed:
    /// ticks and dom0-owned watch deliveries are suppressed until
    /// [`Cluster::recover_control`] runs.
    control_down: bool,
    /// Monotonic counter over XenBus deliveries driving the deterministic
    /// drop/dup decisions of `BusUnreliable` — never the machine RNG,
    /// which would perturb I/O routing under fault injection.
    bus_seq: u64,
}

/// The simulation world: machines (plus whatever workload state event
/// closures capture via `Rc<RefCell<…>>`).
#[derive(Default)]
pub struct Cluster {
    /// The machines.
    pub machines: Vec<Machine>,
}

impl Cluster {
    /// Empty cluster.
    pub fn new() -> Self {
        Cluster::default()
    }

    /// Add a machine; returns its index.
    pub fn add_machine(&mut self, cfg: MachineConfig) -> usize {
        let idx = self.machines.len();
        self.machines.push(Machine::new(idx, cfg));
        idx
    }

    /// Access a machine.
    pub fn machine(&self, idx: usize) -> &Machine {
        &self.machines[idx]
    }

    /// Mutable access to a machine.
    pub fn machine_mut(&mut self, idx: usize) -> &mut Machine {
        &mut self.machines[idx]
    }

    /// Install the policy layer on a machine and start its periodic tick.
    pub fn install_control(&mut self, s: &mut Sched, idx: usize, control: Box<dyn ControlPlane>) {
        let period = control.tick_period();
        self.machines[idx].control = Some(control);
        if let Some(p) = period {
            s.schedule_every(p, move |cl: &mut Cluster, s| {
                Cluster::control_tick(cl, idx, s);
                true
            });
        }
    }

    fn control_tick(cl: &mut Cluster, idx: usize, s: &mut Sched) {
        let m = &mut cl.machines[idx];
        // A crashed plane misses its ticks entirely (the periodic closure
        // cannot be cancelled, so the gate lives here).
        if m.control_down {
            return;
        }
        m.with_control(s, |cp, m, s| cp.on_tick(m, s));
        Cluster::drain_results(cl, idx, s);
    }

    /// Crash the management half of the control plane on machine `idx`:
    /// the plane drops all in-memory decision state
    /// ([`ControlPlane::on_crash`]), its store watches are unregistered,
    /// and ticks plus dom0-owned watch deliveries are suppressed until
    /// [`Cluster::recover_control`]. Guest-driver behaviour (congestion
    /// handshakes, command acks) is untouched — it lives in the guests.
    pub fn crash_control(cl: &mut Cluster, s: &mut Sched, idx: usize) {
        let m = &mut cl.machines[idx];
        if m.control_down {
            return;
        }
        m.control_down = true;
        m.store.unwatch_owner(crate::xenstore::DOM0);
        // Direct invocation, not `with_control`: a dead plane neither
        // flushes store events nor receives queued signals.
        if let Some(mut cp) = m.control.take() {
            cp.on_crash(m, s);
            m.control = Some(cp);
        }
    }

    /// Restart the management plane after [`Cluster::crash_control`]: the
    /// plane rebuilds its decision state from the store and re-arms its
    /// watches ([`ControlPlane::on_recover`]), then normal ticking resumes.
    pub fn recover_control(cl: &mut Cluster, s: &mut Sched, idx: usize) {
        let m = &mut cl.machines[idx];
        if !m.control_down {
            return;
        }
        m.control_down = false;
        m.with_control(s, |cp, m, s| cp.on_recover(m, s));
        Cluster::drain_results(cl, idx, s);
    }

    /// Create a domain on a machine. `tune` may adjust the guest config
    /// (dirty ratios, queue sizes, …) before boot.
    pub fn create_domain(
        &mut self,
        s: &mut Sched,
        idx: usize,
        spec: VmSpec,
        tune: impl FnOnce(&mut GuestConfig),
    ) -> DomainId {
        let dom = self.machines[idx].create_domain_inner(s, spec, tune);
        let m = &mut self.machines[idx];
        m.with_control(s, |cp, m, s| cp.on_domain_created(m, s, dom));
        Cluster::drain_results(self, idx, s);
        dom
    }

    /// Destroy a domain (teardown; in-flight device work completes into
    /// the void).
    pub fn destroy_domain(&mut self, s: &mut Sched, idx: usize, dom: DomainId) {
        let m = &mut self.machines[idx];
        m.with_control(s, |cp, m, s| cp.on_domain_destroyed(m, s, dom));
        self.machines[idx].destroy_domain_inner(dom);
        Cluster::drain_results(self, idx, s);
    }

    /// Submit a file op from `vcpu` of `dom`; `waiter` fires on completion.
    pub fn submit_op(
        &mut self,
        s: &mut Sched,
        idx: usize,
        dom: DomainId,
        vcpu: u32,
        op: FileOp,
        waiter: Option<OpWaiter>,
    ) {
        self.machines[idx].submit_op_inner(s, dom, vcpu, op, waiter);
        Cluster::drain_results(self, idx, s);
    }

    /// Run `work` of CPU time on a VCPU; `k` fires when it retires.
    ///
    /// Each physical core serves the work items of the VCPUs placed on it
    /// FIFO, and each VCPU runs one item at a time — so contention costs
    /// only appear when co-resident VCPUs are *actually* busy, not merely
    /// placed together.
    pub fn run_cpu(
        &mut self,
        s: &mut Sched,
        idx: usize,
        dom: DomainId,
        vcpu: u32,
        work: SimDuration,
        k: CpuWaiter,
    ) {
        let m = &mut self.machines[idx];
        let Some(d) = m.domains.get_mut(&dom) else {
            return; // domain died; drop the continuation
        };
        let core = d.cores[vcpu as usize % d.cores.len()];
        let slot = vcpu as usize % d.vcpu_busy.len();
        let now = s.now();
        // Xen credit-scheduler BOOST semantics: a VCPU waking after a
        // genuine idle period preempts CPU-bound co-residents (it jumps
        // the core queue), but its work still consumes core capacity —
        // boost reorders, it never creates cycles. A VCPU running
        // back-to-back work is CPU-bound and waits for the core FIFO.
        const BOOST_IDLE: SimDuration = SimDuration::from_micros(500);
        let boosted = d.vcpu_busy[slot] + BOOST_IDLE <= now;
        let start = if boosted {
            now
        } else {
            d.vcpu_busy[slot].max(m.core_busy[core.0]).max(now)
        };
        let finish = start + work;
        d.vcpu_busy[slot] = finish;
        // Capacity conservation: the core's backlog grows by `work` either
        // way; boosted work pushes CPU-bound co-residents back.
        m.core_busy[core.0] = m.core_busy[core.0].max(start) + work;
        m.cpu.record_busy(core, work);
        s.schedule_at(finish, move |cl: &mut Cluster, s| k(cl, s));
    }

    /// Run a deferred control-plane-style action against a machine (e.g. a
    /// staggered wakeup scheduled by a policy), with store events, kernel
    /// signals and op results processed afterwards.
    pub fn cp_action(
        &mut self,
        s: &mut Sched,
        idx: usize,
        f: impl FnOnce(&mut Machine, &mut Sched),
    ) {
        let m = &mut self.machines[idx];
        m.store.set_now(s.now());
        f(m, s);
        m.flush_store_events(s);
        m.dispatch_signals(s);
        Cluster::drain_results(self, idx, s);
    }

    /// Invoke queued op waiters for a machine (must run at cluster level —
    /// waiters receive the whole cluster). Iterative, never re-entrant: a
    /// waiter chain of synchronous completions (cache hits) is unbounded,
    /// so inner calls defer to the outermost loop instead of recursing.
    fn drain_results(cl: &mut Cluster, idx: usize, s: &mut Sched) {
        if cl.machines[idx].draining {
            return;
        }
        cl.machines[idx].draining = true;
        loop {
            let Some((result, waiter)) = cl.machines[idx].pending_results.pop() else {
                break;
            };
            if let Some(w) = waiter {
                w(cl, s, result);
            }
        }
        cl.machines[idx].draining = false;
    }

    // ---- internal event handlers (static, cluster-level) ----

    fn backend_wake(cl: &mut Cluster, idx: usize, s: &mut Sched, dom: DomainId) {
        let m = &mut cl.machines[idx];
        let now = s.now();
        let Some(d) = m.domains.get_mut(&dom) else {
            return;
        };
        let batch = d.ring.drain(usize::MAX);
        let mut submit_times = Vec::with_capacity(batch.len());
        let mut total_cpu = SimDuration::ZERO;
        for (req, _pushed) in &batch {
            let cost = m.cfg.timing.backend_per_req
                + SimDuration::from_secs_f64(req.len as f64 / m.cfg.timing.backend_copy_bw as f64);
            let mut start = d.backend_busy_until.max(now);
            // Policy rate limit (device-dispatch enforcement point): a
            // throttled domain's requests start no earlier than the
            // limiter's ready horizon, which each request then pushes out
            // by len/limit. Zero work — and zero trace traffic — when no
            // limit is installed.
            if let Some(bps) = d.rate_limit_bps {
                if d.rate_ready_at > start {
                    trace_event!(
                        now,
                        TraceEventKind::RateLimitDefer {
                            dom: dom.0,
                            req: req.id.0,
                            delay_us: d.rate_ready_at.saturating_since(start).as_nanos() / 1_000,
                        }
                    );
                    start = d.rate_ready_at;
                }
                let pay = SimDuration::from_secs_f64(req.len as f64 / bps as f64);
                d.rate_ready_at = start + pay;
            }
            d.backend_busy_until = start + cost;
            total_cpu += cost;
            submit_times.push((d.backend_busy_until, *req));
        }
        // Backend kthread burns shared-core CPU (the overhead SDC removes)
        // and delays co-resident VCPU work.
        let core = d.cores[0];
        m.cpu.record_busy(core, total_cpu);
        m.core_busy[core.0] = m.core_busy[core.0].max(now) + total_cpu;
        for (at, req) in submit_times {
            s.schedule_at(at, move |cl: &mut Cluster, s| {
                Cluster::host_submit(cl, idx, s, req);
            });
        }
    }

    fn host_submit(cl: &mut Cluster, idx: usize, s: &mut Sched, req: IoRequest) {
        let m = &mut cl.machines[idx];
        m.storage.submit(req, s.now());
        m.ensure_device_event(s);
    }

    fn device_event(cl: &mut Cluster, idx: usize, s: &mut Sched) {
        let now = s.now();
        let m = &mut cl.machines[idx];
        m.device_event_at = SimTime::MAX;
        let done = m.storage.complete_due(now);
        let delay = match m.cfg.io_mode {
            IoPathMode::Paravirt => m.cfg.timing.irq_latency,
            IoPathMode::DedicatedCores { .. } => m.cfg.timing.polled_completion_latency,
        };
        for req in done {
            if let Some(&dom) = m.stream_to_dom.get(&req.stream) {
                s.schedule_in(delay, move |cl: &mut Cluster, s| {
                    Cluster::deliver_completion(cl, idx, s, dom, req);
                });
            }
        }
        m.ensure_device_event(s);
    }

    fn deliver_completion(
        cl: &mut Cluster,
        idx: usize,
        s: &mut Sched,
        dom: DomainId,
        req: IoRequest,
    ) {
        let now = s.now();
        let m = &mut cl.machines[idx];
        if let Some(d) = m.domains.get_mut(&dom) {
            let lat = now.saturating_since(req.submitted);
            m.io_hist.entry(dom).or_default().record(lat);
            *m.io_bytes.entry(dom).or_insert(0) += req.len;
            trace_event!(
                now,
                TraceEventKind::BlockComplete {
                    dom: dom.0,
                    req: req.id.0,
                }
            );
            d.kernel.on_block_complete(req.id, now);
            m.process_domain_outputs(s, dom);
            m.dispatch_signals(s);
        }
        Cluster::drain_results(cl, idx, s);
    }

    fn kernel_timer(cl: &mut Cluster, idx: usize, s: &mut Sched, dom: DomainId) {
        let now = s.now();
        let m = &mut cl.machines[idx];
        let Some(d) = m.domains.get_mut(&dom) else {
            return;
        };
        d.timer_at = SimTime::MAX;
        d.kernel.on_timer(now);
        m.process_domain_outputs(s, dom);
        m.dispatch_signals(s);
        m.ensure_timer(s, dom);
        Cluster::drain_results(cl, idx, s);
    }

    fn iocore_event(cl: &mut Cluster, idx: usize, s: &mut Sched, core_idx: usize) {
        let now = s.now();
        let m = &mut cl.machines[idx];
        let (_dom, req) = m.iocores[core_idx].finish(now);
        // Address remap happened at routing; forward to the host block layer.
        m.storage.submit(req, now);
        m.ensure_device_event(s);
        m.kick_iocore(s, core_idx);
    }

    /// One XenBus delivery sweep: every watch event of one flush arrives
    /// in a single scheduled callback instead of one callback per event.
    /// Per-event behaviour (crashed-plane gating, trace, control-plane
    /// dispatch, result drain) is unchanged — the sweep simply calls the
    /// per-event path in batch order, which is exactly the order the
    /// per-event callbacks fired in before (consecutive scheduler
    /// sequence numbers at one instant). The drained buffer is recycled
    /// into the store.
    fn store_delivery_batch(cl: &mut Cluster, idx: usize, s: &mut Sched, mut evs: Vec<WatchEvent>) {
        for ev in evs.drain(..) {
            Cluster::store_delivery(cl, idx, s, ev);
        }
        cl.machines[idx].store.recycle_events(evs);
    }

    fn store_delivery(cl: &mut Cluster, idx: usize, s: &mut Sched, ev: WatchEvent) {
        let m = &mut cl.machines[idx];
        // A crashed plane's XenBus channel is dead: events addressed to
        // dom0 (the management module's watches) die on the floor and are
        // NOT replayed at recovery — the recovery scan must not need them.
        // Guest-owned deliveries (the guest drivers' watches) still flow.
        if m.control_down && ev.owner == crate::xenstore::DOM0 {
            return;
        }
        trace_event!(
            s.now(),
            TraceEventKind::XenBusDeliver {
                dom: ev.owner.0,
                path: Rc::clone(&ev.path),
                value: ev.value.clone(),
            }
        );
        m.with_control(s, |cp, m, s| cp.on_store_event(m, s, ev));
        Cluster::drain_results(cl, idx, s);
    }
}

/// What a machine can still host — the capacity facts a cluster placement
/// layer needs, decoupled from the machine internals that produce them.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlacementCaps {
    /// Cores available to VCPUs (total minus dedicated I/O cores).
    pub total_cores: u32,
    /// Largest unreserved core count on any one socket — the biggest VM
    /// that can stay NUMA-local here.
    pub numa_max_cores: u32,
    /// VCPUs currently placed on the topology.
    pub placed_vcpus: u32,
    /// Guest memory committed to live domains, bytes.
    pub committed_mem: u64,
}

impl Machine {
    fn new(idx: usize, cfg: MachineConfig) -> Self {
        let mut topology = NumaTopology::new(cfg.sockets, cfg.cores_per_socket);
        let mut cpu = CpuAccounting::new(topology.cores(), SimTime::ZERO);
        let mut iocores = Vec::new();
        match cfg.io_mode {
            IoPathMode::Paravirt => {}
            IoPathMode::DedicatedCores { per_socket } => {
                let sockets: Vec<usize> = if per_socket {
                    (0..cfg.sockets).collect()
                } else {
                    vec![0]
                };
                for sk in sockets {
                    let core = topology.first_core_of(sk);
                    topology.reserve_io_core(core);
                    cpu.start_spinning(core, SimTime::ZERO);
                    iocores.push(IoCore::new(sk, core, cfg.iocore));
                }
            }
        }
        // The composed machine installs real-XenStore-style per-domain
        // quotas; a bare `XenStore::new()` (differential oracle, store
        // micro-benches) stays quota-free.
        let mut store = XenStore::new();
        store.set_quota(StoreQuota::generous());
        Machine {
            idx,
            store,
            storage: iorch_storage::paper_testbed_storage(cfg.seed ^ 0x0570_7a6e),
            topology,
            cpu,
            iocores,
            rng: SimRng::new(cfg.seed),
            domains: BTreeMap::new(),
            core_busy: vec![SimTime::ZERO; cfg.sockets * cfg.cores_per_socket],
            next_domid: 1,
            slot_free: Vec::new(),
            slot_high: 0,
            domain_gen: 0,
            vdisk_cursor: 0,
            stream_to_dom: HashMap::new(),
            control: None,
            device_event_at: SimTime::MAX,
            pending_signals: Vec::new(),
            pending_results: Vec::new(),
            io_hist: BTreeMap::new(),
            io_bytes: BTreeMap::new(),
            ops_completed: BTreeMap::new(),
            draining: false,
            faults: None,
            control_down: false,
            bus_seq: 0,
            cfg,
        }
    }

    /// The installed control plane's name (for reports).
    pub fn control_name(&self) -> &'static str {
        self.control.as_ref().map_or("none", |c| c.name())
    }

    /// Whether the management half of the control plane is currently
    /// crashed (between [`Cluster::crash_control`] and
    /// [`Cluster::recover_control`]).
    pub fn is_control_down(&self) -> bool {
        self.control_down
    }

    /// Install the machine-level half of a fault plan (watch-event delay).
    /// Use [`Cluster::install_faults`] to install a whole plan across all
    /// layers.
    pub fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        self.faults = plan;
    }

    /// Iterate live domain ids in ascending order, without allocating.
    /// Prefer this over [`Machine::domain_ids`] everywhere a borrow of
    /// the machine can be held across the loop.
    pub fn domains(&self) -> impl Iterator<Item = DomainId> + '_ {
        self.domains.keys().copied()
    }

    /// Number of live domains.
    pub fn domain_count(&self) -> usize {
        self.domains.len()
    }

    /// Collect live domain ids into a fresh `Vec` (ascending). Kept for
    /// call sites that must release the machine borrow (e.g. the frozen
    /// legacy planes); new code should use [`Machine::domains`].
    pub fn domain_ids(&self) -> Vec<DomainId> {
        self.domains.keys().copied().collect()
    }

    /// Dense slot index of a live domain. Slots are assigned at creation
    /// and recycled LIFO at destruction, so they stay `< slot_count()`;
    /// unlike [`DomainId`]s they ARE reused, and slot-keyed state must be
    /// reset when the occupying domain changes.
    pub fn slot_of(&self, dom: DomainId) -> Option<usize> {
        self.domains.get(&dom).map(|d| d.slot)
    }

    /// High-water slot count: an exclusive upper bound on every live
    /// domain's slot, bounded by the peak concurrent domain count (not by
    /// the total ever created).
    pub fn slot_count(&self) -> usize {
        self.slot_high
    }

    /// Monotonic generation bumped on every domain create/destroy. Equal
    /// generations mean an identical live-domain set, so a control plane
    /// can skip per-domain resync in O(1).
    pub fn domain_generation(&self) -> u64 {
        self.domain_gen
    }

    /// Capacity snapshot a cluster placement layer scores against: static
    /// topology bounds plus current VCPU/memory commitments.
    pub fn placement_caps(&self) -> PlacementCaps {
        PlacementCaps {
            total_cores: self.topology.unreserved_cores() as u32,
            numa_max_cores: self.topology.max_unreserved_in_socket() as u32,
            placed_vcpus: self.topology.placed_vcpus(),
            committed_mem: self.domains.values().map(|d| d.spec.mem_bytes).sum(),
        }
    }

    /// Access a domain.
    pub fn domain(&self, dom: DomainId) -> Option<&Domain> {
        self.domains.get(&dom)
    }

    /// Mutable access to a domain's kernel (policy hooks use this).
    pub fn kernel_mut(&mut self, dom: DomainId) -> Option<&mut GuestKernel> {
        self.domains.get_mut(&dom).map(|d| &mut d.kernel)
    }

    /// Block-level I/O latency histogram of a domain.
    pub fn io_latency(&self, dom: DomainId) -> Option<&LatencyHistogram> {
        self.io_hist.get(&dom)
    }

    /// Total bytes moved for a domain.
    pub fn io_bytes(&self, dom: DomainId) -> u64 {
        self.io_bytes.get(&dom).copied().unwrap_or(0)
    }

    /// File ops completed for a domain.
    pub fn ops_completed(&self, dom: DomainId) -> u64 {
        self.ops_completed.get(&dom).copied().unwrap_or(0)
    }

    /// Machine CPU utilization so far.
    pub fn utilization(&self, now: SimTime) -> f64 {
        self.cpu.utilization(now)
    }

    fn create_domain_inner(
        &mut self,
        s: &mut Sched,
        spec: VmSpec,
        tune: impl FnOnce(&mut GuestConfig),
    ) -> DomainId {
        let id = DomainId(self.next_domid);
        self.next_domid += 1;
        let slot = self.slot_free.pop().unwrap_or_else(|| {
            let s = self.slot_high;
            self.slot_high += 1;
            s
        });
        self.domain_gen += 1;
        let cores = self
            .topology
            .place(id, spec.vcpus, PlacementPolicy::PreferSameSocket);
        // Allocate the virtual disk as a region of the host device,
        // wrapping modulo capacity for long arrival/departure runs.
        let cap = self.storage.device_bandwidth().max(1); // placeholder, see below
        let _ = cap;
        let dev_capacity: u64 = 960 << 30;
        if self.vdisk_cursor + spec.vdisk_bytes > dev_capacity {
            self.vdisk_cursor = 0;
        }
        let vdisk_base = self.vdisk_cursor;
        self.vdisk_cursor += spec.vdisk_bytes;
        let stream = StreamId(id.0);
        let mut gcfg = GuestConfig::new(spec.mem_bytes, spec.vdisk_bytes, stream);
        tune(&mut gcfg);
        let kernel = GuestKernel::new(gcfg, s.now());
        // Store bootstrap, as Xen tools would do it.
        self.store.set_now(s.now());
        let path = XenStore::domain_path(id);
        let _ = self
            .store
            .mkdir(crate::xenstore::DOM0, &path, Perms::private_to(id));
        let _ = self
            .store
            .write(id, format!("{path}/virt-dev/has_dirty_pages"), "0");
        self.stream_to_dom.insert(stream, id);
        let vcpus = spec.vcpus as usize;
        self.domains.insert(
            id,
            Domain {
                id,
                spec,
                kernel,
                cores,
                vcpu_busy: vec![SimTime::ZERO; vcpus],
                ring: Ring::new(1024),
                backend_busy_until: SimTime::ZERO,
                rate_limit_bps: None,
                rate_ready_at: SimTime::ZERO,
                vdisk_base,
                timer_at: SimTime::MAX,
                created_at: s.now(),
                slot,
                route_weights: Vec::new(),
                op_vcpu: HashMap::new(),
                op_waiters: HashMap::new(),
            },
        );
        self.ensure_timer(s, id);
        id
    }

    fn destroy_domain_inner(&mut self, dom: DomainId) {
        if let Some(d) = self.domains.remove(&dom) {
            self.slot_free.push(d.slot);
            self.domain_gen += 1;
            self.topology.unplace(&d.cores);
            self.stream_to_dom.remove(&d.kernel.stream());
            self.storage.drain_stream(d.kernel.stream());
            for core in &mut self.iocores {
                core.remove_domain(dom);
            }
            let _ = self
                .store
                .remove(crate::xenstore::DOM0, XenStore::domain_path(dom));
        }
    }

    fn submit_op_inner(
        &mut self,
        s: &mut Sched,
        dom: DomainId,
        vcpu: u32,
        op: FileOp,
        waiter: Option<OpWaiter>,
    ) {
        let Some(d) = self.domains.get_mut(&dom) else {
            return;
        };
        let op_id = d.kernel.start_op(op, s.now());
        d.op_vcpu.insert(op_id, vcpu);
        if let Some(w) = waiter {
            d.op_waiters.insert(op_id, w);
        }
        self.process_domain_outputs(s, dom);
        self.dispatch_signals(s);
    }

    /// Process a guest kernel's accumulated outputs: route ring requests,
    /// queue op results, collect signals.
    fn process_domain_outputs(&mut self, s: &mut Sched, dom: DomainId) {
        let now = s.now();
        let idx = self.idx;
        let Some(d) = self.domains.get_mut(&dom) else {
            return;
        };
        let out = d.kernel.take_outputs();
        // Completed ops -> queued results (invoked at cluster level).
        for CompletedOp { op, started, class } in out.completed {
            d.op_vcpu.remove(&op);
            let waiter = d.op_waiters.remove(&op);
            *self.ops_completed.entry(dom).or_insert(0) += 1;
            self.pending_results.push((
                OpResult {
                    machine: idx,
                    dom,
                    op,
                    class,
                    started,
                    finished: now,
                },
                waiter,
            ));
        }
        // Signals -> dispatched to the control plane at a safe point.
        for sig in out.signals {
            self.pending_signals.push((dom, sig));
        }
        // Ring requests -> backend path.
        if !out.to_ring.is_empty() {
            let d = self.domains.get_mut(&dom).unwrap();
            let mut routed: Vec<(IoRequest, u32)> = Vec::with_capacity(out.to_ring.len());
            for mut req in out.to_ring {
                let vcpu = d
                    .kernel
                    .op_of_request(req.id)
                    .and_then(|op| d.op_vcpu.get(&op).copied())
                    .unwrap_or(0);
                req.offset += d.vdisk_base;
                trace_event!(
                    now,
                    TraceEventKind::RingPush {
                        dom: dom.0,
                        req: req.id.0,
                    }
                );
                routed.push((req, vcpu));
            }
            match self.cfg.io_mode {
                IoPathMode::Paravirt => {
                    let timing = self.cfg.timing;
                    let d = self.domains.get_mut(&dom).unwrap();
                    for (req, _vcpu) in routed {
                        match d.ring.push(req, now) {
                            RingPush::NeedDoorbell => {
                                s.schedule_in(timing.notify_latency, move |cl: &mut Cluster, s| {
                                    Cluster::backend_wake(cl, idx, s, dom);
                                });
                            }
                            RingPush::Queued => {}
                            RingPush::Full => {
                                debug_assert!(false, "ring overflow");
                            }
                        }
                    }
                }
                IoPathMode::DedicatedCores { per_socket } => {
                    for (req, vcpu) in routed {
                        let (core_idx, remote) = self.route_iocore(dom, vcpu, per_socket);
                        self.iocores[core_idx].enqueue(dom, req, remote, now);
                        self.kick_iocore(s, core_idx);
                    }
                }
            }
        }
        self.ensure_timer(s, dom);
    }

    /// Choose the I/O core for a request and whether the copy is remote.
    fn route_iocore(&mut self, dom: DomainId, vcpu: u32, per_socket: bool) -> (usize, bool) {
        let d = &self.domains[&dom];
        let vcpu_socket = d.vcpu_socket(&self.topology, vcpu);
        if !per_socket {
            // SDC: single core on socket 0 regardless of where the VCPU is.
            return (0, vcpu_socket != self.iocores[0].socket());
        }
        // IOrchestra: per-socket buffers; the co-scheduler may shift load
        // via route weights (indexed by socket).
        let target_socket = if d.route_weights.len() == self.cfg.sockets {
            let total: f64 = d.route_weights.iter().sum();
            if total > 0.0 {
                let mut x = self.rng.f64() * total;
                let mut chosen = vcpu_socket;
                for (sk, w) in d.route_weights.iter().enumerate() {
                    if x < *w {
                        chosen = sk;
                        break;
                    }
                    x -= w;
                }
                chosen
            } else {
                vcpu_socket
            }
        } else {
            vcpu_socket
        };
        let core_idx = self
            .iocores
            .iter()
            .position(|c| c.socket() == target_socket)
            .unwrap_or(0);
        (core_idx, vcpu_socket != self.iocores[core_idx].socket())
    }

    fn kick_iocore(&mut self, s: &mut Sched, core_idx: usize) {
        let idx = self.idx;
        if let Some(done) = self.iocores[core_idx].start_next(s.now()) {
            s.schedule_at(done, move |cl: &mut Cluster, s| {
                Cluster::iocore_event(cl, idx, s, core_idx);
            });
        }
    }

    fn ensure_device_event(&mut self, s: &mut Sched) {
        let idx = self.idx;
        if let Some(next) = self.storage.next_completion() {
            if next < self.device_event_at {
                self.device_event_at = next;
                s.schedule_at(next, move |cl: &mut Cluster, s| {
                    Cluster::device_event(cl, idx, s);
                });
            }
        }
    }

    fn ensure_timer(&mut self, s: &mut Sched, dom: DomainId) {
        let idx = self.idx;
        let Some(d) = self.domains.get_mut(&dom) else {
            return;
        };
        let deadline = d.kernel.next_deadline();
        if deadline < d.timer_at {
            d.timer_at = deadline;
            s.schedule_at(deadline, move |cl: &mut Cluster, s| {
                Cluster::kernel_timer(cl, idx, s, dom);
            });
        }
    }

    /// Run `f` with the control plane temporarily detached (so it can act
    /// back on the machine), then flush store watch events and any signals
    /// it produced.
    pub fn with_control(
        &mut self,
        s: &mut Sched,
        f: impl FnOnce(&mut dyn ControlPlane, &mut Machine, &mut Sched),
    ) {
        // The write-rate quota buckets need the current time; trace
        // stamping additionally wants it only while recording.
        self.store.set_now(s.now());
        if let Some(mut cp) = self.control.take() {
            if iorch_simcore::trace::enabled() {
                // Store methods take no clock; stamp trace events with the
                // time of the event-loop entry running the callback.
                self.store.set_trace_now(s.now());
            }
            f(&mut *cp, self, s);
            self.control = Some(cp);
        }
        self.flush_store_events(s);
        self.dispatch_signals(s);
    }

    /// Dispatch queued kernel signals to the control plane (defers cleanly
    /// if the control plane is already on the stack).
    fn dispatch_signals(&mut self, s: &mut Sched) {
        if !self.pending_signals.is_empty() {
            self.store.set_now(s.now());
        }
        if iorch_simcore::trace::enabled() && !self.pending_signals.is_empty() {
            self.store.set_trace_now(s.now());
        }
        while self.control.is_some() && !self.pending_signals.is_empty() {
            let (dom, sig) = self.pending_signals.remove(0);
            let mut cp = self.control.take().unwrap();
            cp.on_kernel_signal(self, s, dom, sig);
            self.control = Some(cp);
            self.flush_store_events(s);
        }
        if self.control.is_none() {
            // Control plane absent entirely: default to stock Linux
            // behaviour so a bare machine still works.
            while !self.pending_signals.is_empty() {
                let (dom, sig) = self.pending_signals.remove(0);
                if sig == KernelSignal::CongestionQuery {
                    if let Some(d) = self.domains.get_mut(&dom) {
                        d.kernel.enter_congestion(s.now());
                    }
                }
            }
        }
    }

    /// Queue watch events for delivery after XenBus latency. An installed
    /// `BusUnreliable` fault window drops, duplicates, or reorders events
    /// here, keyed off a deterministic delivery counter.
    fn flush_store_events(&mut self, s: &mut Sched) {
        if !self.store.has_events() {
            return;
        }
        let idx = self.idx;
        let mut delay = self.cfg.timing.xenbus_latency;
        let mut bus = None;
        if let Some(plan) = &self.faults {
            delay += plan.watch_delay(s.now());
            bus = plan.bus_unreliable(s.now());
        }
        let mut events = self.store.take_events();
        // All events of one flush share the same delivery instant, so they
        // coalesce into ONE scheduled sweep instead of one scheduler entry
        // per (write x watcher). The sweep preserves the exact per-event
        // firing order of the old design: the per-event callbacks carried
        // consecutive sequence numbers at one timestamp, so nothing could
        // ever interleave between them.
        let batch = if let Some(b) = bus {
            if b.reorder && events.len() > 1 {
                events.reverse();
            }
            let mut out = Vec::with_capacity(events.len());
            for ev in events.drain(..) {
                self.bus_seq += 1;
                let seq = self.bus_seq;
                if b.drop_1_in != 0 && seq.is_multiple_of(b.drop_1_in) {
                    trace_event!(
                        s.now(),
                        TraceEventKind::XenBusDrop {
                            dom: ev.owner.0,
                            path: Rc::clone(&ev.path),
                            value: ev.value.clone(),
                        }
                    );
                    continue;
                }
                if b.dup_1_in != 0 && seq.is_multiple_of(b.dup_1_in) {
                    trace_event!(
                        s.now(),
                        TraceEventKind::XenBusDup {
                            dom: ev.owner.0,
                            path: Rc::clone(&ev.path),
                            value: ev.value.clone(),
                        }
                    );
                    // The duplicate rides right behind the original, as it
                    // did when both were scheduled back to back.
                    out.push(ev.clone());
                    out.push(ev);
                    continue;
                }
                out.push(ev);
            }
            self.store.recycle_events(events);
            out
        } else {
            events
        };
        if batch.is_empty() {
            return;
        }
        s.schedule_in(delay, move |cl: &mut Cluster, s| {
            Cluster::store_delivery_batch(cl, idx, s, batch);
        });
    }

    // ---- control-plane action helpers (the guest driver + management
    // module verbs of the paper) ----

    /// Baseline answer to a congestion query: let the guest sleep.
    pub fn cp_enter_congestion(&mut self, s: &mut Sched, dom: DomainId) {
        if let Some(d) = self.domains.get_mut(&dom) {
            d.kernel.enter_congestion(s.now());
        }
    }

    /// Collaborative release (`release_request` in Alg. 2).
    pub fn cp_grant_bypass(&mut self, s: &mut Sched, dom: DomainId) {
        if let Some(d) = self.domains.get_mut(&dom) {
            d.kernel.grant_bypass(s.now());
            self.process_domain_outputs(s, dom);
        }
    }

    /// Revoke a bypass (host became congested). Any re-raised congestion
    /// query surfaces through the domain's outputs immediately.
    pub fn cp_revoke_bypass(&mut self, s: &mut Sched, dom: DomainId) {
        if let Some(d) = self.domains.get_mut(&dom) {
            d.kernel.revoke_bypass(s.now());
            self.process_domain_outputs(s, dom);
        }
    }

    /// Remote `sync()` (`flush_now` in Alg. 1).
    pub fn cp_remote_sync(&mut self, s: &mut Sched, dom: DomainId) {
        if let Some(d) = self.domains.get_mut(&dom) {
            d.kernel.remote_sync(s.now());
            self.process_domain_outputs(s, dom);
        }
    }

    /// Program a VM's per-socket I/O routing weights (co-scheduler).
    pub fn cp_set_route_weights(&mut self, dom: DomainId, weights: Vec<f64>) {
        if let Some(d) = self.domains.get_mut(&dom) {
            d.route_weights = weights;
        }
    }

    /// Program a VM's DRR quantum on a socket's I/O core.
    pub fn cp_set_quantum(&mut self, socket: usize, dom: DomainId, bytes: u64) {
        if let Some(core) = self.iocores.iter_mut().find(|c| c.socket() == socket) {
            core.set_quantum(dom, bytes);
        }
    }

    /// Program a VM's cgroup blkio weight at the device.
    pub fn cp_set_blkio_weight(&mut self, dom: DomainId, weight: u32) {
        if let Some(d) = self.domains.get(&dom) {
            self.storage.set_stream_weight(d.kernel.stream(), weight);
        }
    }

    /// Install (or with `None`, lift) a bytes/sec rate limit on a VM's
    /// backend dispatch — the enforcement mechanism behind policy
    /// `RateLimit` actions. Deterministic: throttling only reshapes
    /// request start times, never drops or reorders them.
    pub fn cp_set_rate_limit(&mut self, dom: DomainId, bytes_per_sec: Option<u64>) {
        if let Some(d) = self.domains.get_mut(&dom) {
            d.rate_limit_bps = bytes_per_sec.filter(|&b| b > 0);
            if d.rate_limit_bps.is_none() {
                d.rate_ready_at = SimTime::ZERO;
            }
        }
    }

    /// The currently installed backend rate limit for a VM, if any.
    pub fn rate_limit(&self, dom: DomainId) -> Option<u64> {
        self.domains.get(&dom).and_then(|d| d.rate_limit_bps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iorch_simcore::Simulation;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn sim_with(io_mode: IoPathMode) -> (Simulation<Cluster>, usize) {
        let mut cluster = Cluster::new();
        let idx = cluster.add_machine(MachineConfig::paper_testbed(7, io_mode));
        (Simulation::new(cluster), idx)
    }

    /// Submit one read op and capture its result.
    fn one_read(
        sim: &mut Simulation<Cluster>,
        idx: usize,
        dom: DomainId,
        file: iorch_guestos::FileId,
        offset: u64,
    ) -> Rc<RefCell<Option<OpResult>>> {
        let slot: Rc<RefCell<Option<OpResult>>> = Rc::new(RefCell::new(None));
        let slot2 = Rc::clone(&slot);
        let (cl, s) = sim.parts_mut();
        cl.submit_op(
            s,
            idx,
            dom,
            0,
            FileOp::Read {
                file,
                offset,
                len: 65536,
            },
            Some(Box::new(move |_, _, r| {
                *slot2.borrow_mut() = Some(r);
            })),
        );
        slot
    }

    #[test]
    fn paravirt_read_completes_with_realistic_latency() {
        let (mut sim, idx) = sim_with(IoPathMode::Paravirt);
        let (cl, s) = sim.parts_mut();
        let dom = cl.create_domain(s, idx, VmSpec::new(2, 4), |_| {});
        let file = cl.machines[idx]
            .kernel_mut(dom)
            .unwrap()
            .create_file(100 << 20)
            .unwrap();
        let slot = one_read(&mut sim, idx, dom, file, 0);
        sim.run_until(SimTime::from_millis(100));
        let r = slot.borrow().expect("read must complete");
        let lat = r.latency();
        // Doorbell (28us) + backend (11us + copy) + device (~55us + xfer)
        // + irq (18us): a cold 64 KiB read lands in the 100us–1ms band.
        assert!(lat > SimDuration::from_micros(100), "lat={lat}");
        assert!(lat < SimDuration::from_millis(1), "lat={lat}");
        assert_eq!(r.class, OpClass::Read);
        assert_eq!(cl_ops(&sim, idx, dom), 1);
    }

    fn cl_ops(sim: &Simulation<Cluster>, idx: usize, dom: DomainId) -> u64 {
        sim.world().machine(idx).ops_completed(dom)
    }

    #[test]
    fn dedicated_core_read_completes() {
        let (mut sim, idx) = sim_with(IoPathMode::DedicatedCores { per_socket: true });
        let (cl, s) = sim.parts_mut();
        let dom = cl.create_domain(s, idx, VmSpec::new(2, 4), |_| {});
        let file = cl.machines[idx]
            .kernel_mut(dom)
            .unwrap()
            .create_file(100 << 20)
            .unwrap();
        let slot = one_read(&mut sim, idx, dom, file, 0);
        sim.run_until(SimTime::from_millis(100));
        assert!(slot.borrow().is_some());
        // The polling core must have processed the request(s).
        let total: u64 = sim
            .world()
            .machine(idx)
            .iocores
            .iter()
            .map(|c| c.processed_count())
            .sum();
        assert!(total >= 1);
    }

    #[test]
    fn writes_then_sync_hit_the_device() {
        let (mut sim, idx) = sim_with(IoPathMode::Paravirt);
        let (cl, s) = sim.parts_mut();
        let dom = cl.create_domain(s, idx, VmSpec::new(2, 4), |_| {});
        let file = cl.machines[idx]
            .kernel_mut(dom)
            .unwrap()
            .create_file(100 << 20)
            .unwrap();
        cl.submit_op(
            s,
            idx,
            dom,
            0,
            FileOp::Write {
                file,
                offset: 0,
                len: 4 << 20,
            },
            None,
        );
        let done: Rc<RefCell<Option<OpResult>>> = Rc::new(RefCell::new(None));
        let d2 = Rc::clone(&done);
        cl.submit_op(
            s,
            idx,
            dom,
            0,
            FileOp::Sync,
            Some(Box::new(move |_, _, r| *d2.borrow_mut() = Some(r))),
        );
        sim.run_until(SimTime::from_secs(1));
        let r = done.borrow().expect("sync completes");
        assert_eq!(r.class, OpClass::Sync);
        // 4 MiB must have been written to the device.
        let (_, wbytes) = sim.world().machine(idx).storage.monitor().byte_counts();
        assert!(wbytes >= 4 << 20, "wbytes={wbytes}");
    }

    #[test]
    fn deterministic_same_seed_same_latency() {
        let run = || {
            let (mut sim, idx) = sim_with(IoPathMode::Paravirt);
            let (cl, s) = sim.parts_mut();
            let dom = cl.create_domain(s, idx, VmSpec::new(2, 4), |_| {});
            let file = cl.machines[idx]
                .kernel_mut(dom)
                .unwrap()
                .create_file(100 << 20)
                .unwrap();
            let slot = one_read(&mut sim, idx, dom, file, 0);
            sim.run_until(SimTime::from_millis(100));
            let r = slot.borrow().unwrap();
            r.latency()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn run_cpu_contention_stretches_time() {
        let (mut sim, idx) = sim_with(IoPathMode::Paravirt);
        let (cl, s) = sim.parts_mut();
        // 24 VCPUs on 12 cores -> every core hosts 2 VCPUs; dom1's VCPU 0
        // and dom2's VCPU 0 land on the same socket-filling order.
        let dom1 = cl.create_domain(s, idx, VmSpec::new(12, 4), |_| {});
        let dom2 = cl.create_domain(s, idx, VmSpec::new(12, 4), |_| {});
        // Find a VCPU of dom2 sharing dom1's VCPU-0 core.
        let core0 = cl.machine(idx).domain(dom1).unwrap().cores[0];
        let shared_vcpu = cl
            .machine(idx)
            .domain(dom2)
            .unwrap()
            .cores
            .iter()
            .position(|&c| c == core0)
            .expect("full machine must share cores") as u32;
        let finish: Rc<RefCell<Option<SimTime>>> = Rc::new(RefCell::new(None));
        let f2 = Rc::clone(&finish);
        // Two 10ms work items contending for one core: the second one
        // finishes around 20ms (FIFO core sharing).
        cl.run_cpu(
            s,
            idx,
            dom1,
            0,
            SimDuration::from_millis(10),
            Box::new(|_, _| {}),
        );
        cl.run_cpu(
            s,
            idx,
            dom2,
            shared_vcpu,
            SimDuration::from_millis(10),
            Box::new(move |_, s| *f2.borrow_mut() = Some(s.now())),
        );
        sim.run_until(SimTime::from_millis(100));
        let t = finish.borrow().expect("cpu work completes");
        assert!(t >= SimTime::from_millis(19), "t={t:?}");
        // An idle co-resident VCPU costs nothing: a fresh item on an
        // uncontended core finishes in ~10ms.
        let (cl, s) = sim.parts_mut();
        let f3: Rc<RefCell<Option<SimTime>>> = Rc::new(RefCell::new(None));
        let f4 = Rc::clone(&f3);
        let start = s.now();
        cl.run_cpu(
            s,
            idx,
            dom1,
            5,
            SimDuration::from_millis(10),
            Box::new(move |_, s| *f4.borrow_mut() = Some(s.now())),
        );
        sim.run_until(SimTime::from_millis(200));
        let t2 = f3.borrow().expect("second work completes");
        assert!(
            t2.saturating_since(start) < SimDuration::from_millis(11),
            "t2={t2:?}"
        );
    }

    #[test]
    fn destroy_domain_cleans_up() {
        let (mut sim, idx) = sim_with(IoPathMode::DedicatedCores { per_socket: true });
        let (cl, s) = sim.parts_mut();
        let dom = cl.create_domain(s, idx, VmSpec::new(2, 4), |_| {});
        assert!(cl.machine(idx).domains().eq([dom]));
        cl.destroy_domain(s, idx, dom);
        assert_eq!(cl.machine(idx).domain_count(), 0);
        // Destroying again is a no-op.
        let (cl, s) = sim.parts_mut();
        cl.destroy_domain(s, idx, dom);
        sim.run_until(SimTime::from_millis(50));
    }

    #[test]
    fn domain_slots_recycle_lifo_and_stay_bounded() {
        let (mut sim, idx) = sim_with(IoPathMode::Paravirt);
        let (cl, s) = sim.parts_mut();
        let a = cl.create_domain(s, idx, VmSpec::new(1, 1), |_| {});
        let b = cl.create_domain(s, idx, VmSpec::new(1, 1), |_| {});
        let m = cl.machine(idx);
        assert_eq!(m.slot_of(a), Some(0));
        assert_eq!(m.slot_of(b), Some(1));
        assert_eq!(m.slot_count(), 2);
        let gen0 = m.domain_generation();
        // Churn: each destroy frees the slot, each create reuses it, the
        // DomainId keeps advancing and the slot high-water never grows.
        let mut last = b;
        for _ in 0..32 {
            cl.destroy_domain(s, idx, last);
            let next = cl.create_domain(s, idx, VmSpec::new(1, 1), |_| {});
            assert!(next.0 > last.0, "domain ids are never reused");
            assert_eq!(cl.machine(idx).slot_of(next), Some(1), "slot recycled");
            last = next;
        }
        let m = cl.machine(idx);
        assert_eq!(m.slot_count(), 2, "slot space bounded by peak domains");
        assert_eq!(m.slot_of(last), Some(1));
        assert_eq!(m.domain_generation(), gen0 + 64, "one bump per lifecycle");
        assert!(m.slot_of(b).is_none(), "dead domains have no slot");
    }

    #[test]
    fn no_control_plane_defaults_to_stock_congestion() {
        let (mut sim, idx) = sim_with(IoPathMode::Paravirt);
        let (cl, s) = sim.parts_mut();
        let dom = cl.create_domain(s, idx, VmSpec::new(1, 1), |_| {});
        let file = cl.machines[idx]
            .kernel_mut(dom)
            .unwrap()
            .create_file(2 << 30)
            .unwrap();
        // Flood with random reads to cross the 7/8 threshold.
        for i in 0..200u64 {
            let (cl, s) = sim.parts_mut();
            cl.submit_op(
                s,
                idx,
                dom,
                0,
                FileOp::Read {
                    file,
                    offset: (i * 7919) % 30000 * 65536,
                    len: 4096,
                },
                None,
            );
        }
        sim.run_until(SimTime::from_secs(2));
        let m = sim.world().machine(idx);
        let k = m.domain(dom).unwrap();
        assert!(
            k.kernel.congestion_entries() >= 1,
            "stock behaviour engaged"
        );
        assert_eq!(m.ops_completed(dom), 200);
    }

    #[test]
    fn io_latency_histogram_populated() {
        let (mut sim, idx) = sim_with(IoPathMode::Paravirt);
        let (cl, s) = sim.parts_mut();
        let dom = cl.create_domain(s, idx, VmSpec::new(2, 4), |_| {});
        let file = cl.machines[idx]
            .kernel_mut(dom)
            .unwrap()
            .create_file(100 << 20)
            .unwrap();
        let _ = one_read(&mut sim, idx, dom, file, 0);
        sim.run_until(SimTime::from_millis(100));
        let h = sim.world().machine(idx).io_latency(dom).unwrap();
        assert!(h.count() >= 1);
        assert!(sim.world().machine(idx).io_bytes(dom) >= 65536);
    }

    #[test]
    fn utilization_rises_with_io() {
        let (mut sim, idx) = sim_with(IoPathMode::Paravirt);
        let (cl, s) = sim.parts_mut();
        let dom = cl.create_domain(s, idx, VmSpec::new(2, 4), |_| {});
        let file = cl.machines[idx]
            .kernel_mut(dom)
            .unwrap()
            .create_file(1 << 30)
            .unwrap();
        for i in 0..50u64 {
            let (cl, s) = sim.parts_mut();
            cl.submit_op(
                s,
                idx,
                dom,
                0,
                FileOp::Read {
                    file,
                    offset: i * (2 << 20),
                    len: 1 << 20,
                },
                None,
            );
        }
        sim.run_until(SimTime::from_millis(200));
        let util = sim.world().machine(idx).utilization(sim.now());
        assert!(util > 0.0, "backend work must consume CPU, util={util}");
    }

    #[test]
    fn dedicated_mode_reserves_and_spins_cores() {
        let (sim, idx) = sim_with(IoPathMode::DedicatedCores { per_socket: true });
        let m = sim.world().machine(idx);
        assert_eq!(m.iocores.len(), 2);
        // Spinning cores alone -> 2/12 utilization.
        let util = m.utilization(SimTime::from_secs(1));
        assert!((util - 2.0 / 12.0).abs() < 1e-6, "util={util}");
        // SDC mode reserves only one.
        let mut cluster = Cluster::new();
        let sdc = cluster.add_machine(MachineConfig::paper_testbed(
            1,
            IoPathMode::DedicatedCores { per_socket: false },
        ));
        assert_eq!(cluster.machine(sdc).iocores.len(), 1);
    }
}
