//! NUMA topology and VCPU placement.
//!
//! The paper's testbed is a two-socket machine (2 × six-core Xeon E5-2620).
//! Placement matters for §3.3: SDC-style dedicated-I/O-core designs assume
//! every VCPU of a VM sits on one socket; large VMs violate that, and
//! IOrchestra balances their I/O across per-socket cores instead.

use crate::domain::DomainId;

/// A physical core index on one machine.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct CoreId(pub usize);

/// Placement strategy for a VM's VCPUs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PlacementPolicy {
    /// Fill the least-loaded socket first; spill to other sockets only when
    /// the VM has more VCPUs than the socket has room (the common vSphere /
    /// Xen practice the paper describes).
    PreferSameSocket,
    /// Round-robin across all cores (stress placement for tests).
    Spread,
}

/// Machine CPU topology plus current VCPU load per core.
#[derive(Clone, Debug)]
pub struct NumaTopology {
    sockets: usize,
    cores_per_socket: usize,
    /// VCPUs assigned per core.
    load: Vec<u32>,
    /// Cores reserved as dedicated I/O cores (never get VCPUs).
    reserved: Vec<bool>,
}

impl NumaTopology {
    /// Build a `sockets × cores_per_socket` topology.
    pub fn new(sockets: usize, cores_per_socket: usize) -> Self {
        assert!(sockets >= 1 && cores_per_socket >= 1);
        NumaTopology {
            sockets,
            cores_per_socket,
            load: vec![0; sockets * cores_per_socket],
            reserved: vec![false; sockets * cores_per_socket],
        }
    }

    /// The paper's testbed: 2 sockets × 6 cores.
    pub fn paper_testbed() -> Self {
        Self::new(2, 6)
    }

    /// Total cores.
    pub fn cores(&self) -> usize {
        self.load.len()
    }

    /// Number of sockets.
    pub fn sockets(&self) -> usize {
        self.sockets
    }

    /// Cores per socket.
    pub fn cores_per_socket(&self) -> usize {
        self.cores_per_socket
    }

    /// Socket of a core.
    pub fn socket_of(&self, core: CoreId) -> usize {
        core.0 / self.cores_per_socket
    }

    /// First core of a socket.
    pub fn first_core_of(&self, socket: usize) -> CoreId {
        CoreId(socket * self.cores_per_socket)
    }

    /// Reserve a specific core as a dedicated I/O core (evicting nothing:
    /// call before placing VMs). Returns false if already reserved.
    pub fn reserve_io_core(&mut self, core: CoreId) -> bool {
        if self.reserved[core.0] {
            return false;
        }
        self.reserved[core.0] = true;
        true
    }

    /// Whether a core is reserved for I/O.
    pub fn is_reserved(&self, core: CoreId) -> bool {
        self.reserved[core.0]
    }

    /// VCPUs currently assigned to a core.
    pub fn core_load(&self, core: CoreId) -> u32 {
        self.load[core.0]
    }

    /// Place `vcpus` VCPUs of a VM; returns one core per VCPU.
    pub fn place(&mut self, _dom: DomainId, vcpus: u32, policy: PlacementPolicy) -> Vec<CoreId> {
        let mut cores = Vec::with_capacity(vcpus as usize);
        match policy {
            PlacementPolicy::Spread => {
                for _ in 0..vcpus {
                    let best = self.least_loaded_core_overall();
                    self.load[best.0] += 1;
                    cores.push(best);
                }
            }
            PlacementPolicy::PreferSameSocket => {
                let mut remaining = vcpus;
                while remaining > 0 {
                    // Pick the socket with the most free (unreserved,
                    // zero-load) cores; tie-break on total load.
                    let socket = self.best_socket();
                    let take = remaining.min(self.free_cores_in(socket).max(1) as u32);
                    for _ in 0..take {
                        let core = self.least_loaded_core_in(socket);
                        self.load[core.0] += 1;
                        cores.push(core);
                    }
                    remaining -= take;
                }
            }
        }
        cores
    }

    /// Release a VM's VCPUs.
    pub fn unplace(&mut self, cores: &[CoreId]) {
        for c in cores {
            self.load[c.0] = self.load[c.0].saturating_sub(1);
        }
    }

    fn free_cores_in(&self, socket: usize) -> usize {
        self.cores_of(socket)
            .filter(|&c| !self.reserved[c.0] && self.load[c.0] == 0)
            .count()
    }

    fn cores_of(&self, socket: usize) -> impl Iterator<Item = CoreId> + '_ {
        let start = socket * self.cores_per_socket;
        (start..start + self.cores_per_socket).map(CoreId)
    }

    fn best_socket(&self) -> usize {
        (0..self.sockets)
            .max_by_key(|&s| {
                let free = self.free_cores_in(s);
                let load: u32 = self.cores_of(s).map(|c| self.load[c.0]).sum();
                (free, std::cmp::Reverse(load))
            })
            .unwrap()
    }

    fn least_loaded_core_in(&self, socket: usize) -> CoreId {
        self.cores_of(socket)
            .filter(|&c| !self.reserved[c.0])
            .min_by_key(|&c| self.load[c.0])
            .unwrap_or_else(|| self.first_core_of(socket))
    }

    fn least_loaded_core_overall(&self) -> CoreId {
        (0..self.cores())
            .map(CoreId)
            .filter(|&c| !self.reserved[c.0])
            .min_by_key(|&c| self.load[c.0])
            .expect("at least one unreserved core")
    }

    /// Cores available to VCPUs (total minus dedicated I/O cores).
    pub fn unreserved_cores(&self) -> usize {
        self.reserved.iter().filter(|&&r| !r).count()
    }

    /// Largest number of unreserved cores on any single socket — the
    /// biggest VM that can stay NUMA-local on this machine.
    pub fn max_unreserved_in_socket(&self) -> usize {
        (0..self.sockets)
            .map(|s| self.cores_of(s).filter(|&c| !self.reserved[c.0]).count())
            .max()
            .unwrap_or(0)
    }

    /// VCPUs currently placed across all cores.
    pub fn placed_vcpus(&self) -> u32 {
        self.load.iter().sum()
    }

    /// Distinct sockets a set of cores spans.
    pub fn sockets_spanned(&self, cores: &[CoreId]) -> Vec<usize> {
        let mut s: Vec<usize> = cores.iter().map(|&c| self.socket_of(c)).collect();
        s.sort_unstable();
        s.dedup();
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry() {
        let t = NumaTopology::paper_testbed();
        assert_eq!(t.cores(), 12);
        assert_eq!(t.sockets(), 2);
        assert_eq!(t.socket_of(CoreId(0)), 0);
        assert_eq!(t.socket_of(CoreId(5)), 0);
        assert_eq!(t.socket_of(CoreId(6)), 1);
        assert_eq!(t.first_core_of(1), CoreId(6));
    }

    #[test]
    fn small_vm_stays_on_one_socket() {
        let mut t = NumaTopology::paper_testbed();
        let cores = t.place(DomainId(1), 4, PlacementPolicy::PreferSameSocket);
        assert_eq!(cores.len(), 4);
        assert_eq!(t.sockets_spanned(&cores).len(), 1);
    }

    #[test]
    fn big_vm_spans_sockets() {
        let mut t = NumaTopology::paper_testbed();
        // 10 VCPUs on a 12-core (2×6) machine must span both sockets.
        let cores = t.place(DomainId(1), 10, PlacementPolicy::PreferSameSocket);
        assert_eq!(cores.len(), 10);
        assert_eq!(t.sockets_spanned(&cores).len(), 2);
    }

    #[test]
    fn reserved_cores_never_get_vcpus() {
        let mut t = NumaTopology::new(2, 2);
        assert!(t.reserve_io_core(CoreId(0)));
        assert!(!t.reserve_io_core(CoreId(0)));
        let cores = t.place(DomainId(1), 3, PlacementPolicy::PreferSameSocket);
        assert!(!cores.contains(&CoreId(0)));
        assert!(t.is_reserved(CoreId(0)));
    }

    #[test]
    fn load_tracking_and_unplace() {
        let mut t = NumaTopology::new(1, 2);
        let cores = t.place(DomainId(1), 4, PlacementPolicy::PreferSameSocket);
        // 4 VCPUs over 2 cores -> 2 each.
        assert_eq!(t.core_load(CoreId(0)) + t.core_load(CoreId(1)), 4);
        t.unplace(&cores);
        assert_eq!(t.core_load(CoreId(0)), 0);
        assert_eq!(t.core_load(CoreId(1)), 0);
    }

    #[test]
    fn spread_balances() {
        let mut t = NumaTopology::new(2, 2);
        t.place(DomainId(1), 4, PlacementPolicy::Spread);
        for c in 0..4 {
            assert_eq!(t.core_load(CoreId(c)), 1);
        }
    }

    #[test]
    fn capacity_accessors_track_reservation_and_load() {
        let mut t = NumaTopology::paper_testbed();
        assert_eq!(t.unreserved_cores(), 12);
        assert_eq!(t.max_unreserved_in_socket(), 6);
        assert_eq!(t.placed_vcpus(), 0);
        t.reserve_io_core(CoreId(0));
        t.reserve_io_core(CoreId(6));
        t.reserve_io_core(CoreId(7));
        assert_eq!(t.unreserved_cores(), 9);
        assert_eq!(t.max_unreserved_in_socket(), 5);
        let cores = t.place(DomainId(1), 4, PlacementPolicy::PreferSameSocket);
        assert_eq!(t.placed_vcpus(), 4);
        t.unplace(&cores);
        assert_eq!(t.placed_vcpus(), 0);
    }

    #[test]
    fn second_vm_lands_on_other_socket() {
        let mut t = NumaTopology::paper_testbed();
        let a = t.place(DomainId(1), 4, PlacementPolicy::PreferSameSocket);
        let b = t.place(DomainId(2), 4, PlacementPolicy::PreferSameSocket);
        let sa = t.sockets_spanned(&a);
        let sb = t.sockets_spanned(&b);
        assert_ne!(sa, sb, "second VM should prefer the emptier socket");
    }
}
