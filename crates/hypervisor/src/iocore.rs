//! Dedicated polling I/O cores with deficit-round-robin buffer scheduling —
//! the paper's Algorithm 3.
//!
//! Each core keeps one request buffer per active VM and polls them with a
//! per-VM credit `C_i`, refilled by a quantum `Q_i = BW_max · S^{VMi}_{SKT}`
//! each round. A request is processed when its size fits in the credit; an
//! emptied buffer zeroes the credit (no banking for idle VMs). Processing a
//! request costs a fixed poll/handling overhead plus the grant-copy of its
//! payload — slower when the data lives on a remote socket.

use std::collections::{BTreeMap, VecDeque};

use iorch_simcore::trace::TraceEventKind;
use iorch_simcore::{trace_event, SimDuration, SimTime};
use iorch_storage::IoRequest;

use crate::domain::DomainId;
use crate::numa::CoreId;

/// Processing cost model of one polling core.
#[derive(Clone, Copy, Debug)]
pub struct IoCoreParams {
    /// Fixed per-request handling cost (descriptor parse, submit).
    pub per_req_overhead: SimDuration,
    /// Grant-copy bandwidth for same-socket payloads, bytes/s.
    pub copy_bw_local: u64,
    /// Grant-copy bandwidth for cross-socket payloads, bytes/s.
    pub copy_bw_remote: u64,
    /// Default quantum in bytes for newly seen VMs.
    pub default_quantum: u64,
}

impl Default for IoCoreParams {
    fn default() -> Self {
        IoCoreParams {
            per_req_overhead: SimDuration::from_micros(3),
            copy_bw_local: 6_000_000_000,
            copy_bw_remote: 4_000_000_000,
            default_quantum: 1 << 20, // 1 MiB
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct Buffered {
    req: IoRequest,
    remote: bool,
    enqueued: SimTime,
}

#[derive(Clone, Copy, Debug)]
struct InProcess {
    dom: DomainId,
    req: IoRequest,
    enqueued: SimTime,
}

/// One dedicated polling I/O core.
#[derive(Clone, Debug)]
pub struct IoCore {
    socket: usize,
    core: CoreId,
    params: IoCoreParams,
    buffers: BTreeMap<DomainId, VecDeque<Buffered>>,
    credits: BTreeMap<DomainId, u64>,
    quanta: BTreeMap<DomainId, u64>,
    /// Round-robin order of domains with buffered work.
    rotation: VecDeque<DomainId>,
    current: Option<DomainId>,
    in_process: Option<InProcess>,
    ewma_latency_us: f64,
    processed: u64,
    bytes: BTreeMap<DomainId, u64>,
}

impl IoCore {
    /// A polling core on `socket`, pinned to physical `core`.
    pub fn new(socket: usize, core: CoreId, params: IoCoreParams) -> Self {
        IoCore {
            socket,
            core,
            params,
            buffers: BTreeMap::new(),
            credits: BTreeMap::new(),
            quanta: BTreeMap::new(),
            rotation: VecDeque::new(),
            current: None,
            in_process: None,
            ewma_latency_us: 0.0,
            processed: 0,
            bytes: BTreeMap::new(),
        }
    }

    /// The socket this core serves.
    pub fn socket(&self) -> usize {
        self.socket
    }

    /// The physical core it spins on.
    pub fn core(&self) -> CoreId {
        self.core
    }

    /// Set a VM's quantum (Q_i = BW_max · share). IOrchestra updates this
    /// from the system store; SDC leaves all quanta equal.
    pub fn set_quantum(&mut self, dom: DomainId, bytes: u64) {
        self.quanta.insert(dom, bytes.max(4096));
    }

    /// Current quantum for a VM.
    pub fn quantum(&self, dom: DomainId) -> u64 {
        self.quanta
            .get(&dom)
            .copied()
            .unwrap_or(self.params.default_quantum)
    }

    /// Is the core currently processing a request?
    pub fn busy(&self) -> bool {
        self.in_process.is_some()
    }

    /// Total buffered requests across all VMs.
    pub fn backlog(&self) -> usize {
        self.buffers.values().map(|b| b.len()).sum()
    }

    /// Buffered requests for one VM.
    pub fn backlog_of(&self, dom: DomainId) -> usize {
        self.buffers.get(&dom).map_or(0, |b| b.len())
    }

    /// EWMA of request latency through this core (the `L_i` of §3.3).
    pub fn avg_latency(&self) -> SimDuration {
        SimDuration::from_micros_f64(self.ewma_latency_us)
    }

    /// Requests processed so far.
    pub fn processed_count(&self) -> u64 {
        self.processed
    }

    /// Bytes processed for one VM.
    pub fn bytes_of(&self, dom: DomainId) -> u64 {
        self.bytes.get(&dom).copied().unwrap_or(0)
    }

    /// Enqueue a request into a VM's buffer. `remote` marks a payload on a
    /// different socket than this core.
    pub fn enqueue(&mut self, dom: DomainId, req: IoRequest, remote: bool, now: SimTime) {
        let buf = self.buffers.entry(dom).or_default();
        let newly_active = buf.is_empty();
        buf.push_back(Buffered {
            req,
            remote,
            enqueued: now,
        });
        if newly_active && self.current != Some(dom) && !self.rotation.contains(&dom) {
            self.rotation.push_back(dom);
        }
    }

    /// Begin processing the next request per DRR. Returns its completion
    /// time, or `None` if the core is busy or has no work.
    pub fn start_next(&mut self, now: SimTime) -> Option<SimTime> {
        if self.in_process.is_some() {
            return None;
        }
        // Bounded DRR scan: each rotation pass adds one quantum per domain,
        // so any finite request eventually fits.
        for _ in 0..10_000 {
            let dom = match self.current {
                Some(d) => d,
                None => {
                    let d = self.rotation.pop_front()?;
                    // Visiting a domain refills its credit: C_i += Q_i.
                    let q = self.quantum(d);
                    let c = self.credits.entry(d).or_insert(0);
                    *c += q;
                    trace_event!(
                        now,
                        TraceEventKind::DrrVisit {
                            core: self.core.0 as u32,
                            dom: d.0,
                            credit: *c,
                        }
                    );
                    self.current = Some(d);
                    d
                }
            };
            let buf = self.buffers.entry(dom).or_default();
            let Some(front) = buf.front().copied() else {
                // B_i empty -> C_i = 0, move on.
                self.credits.insert(dom, 0);
                self.current = None;
                continue;
            };
            let credit = self.credits.get(&dom).copied().unwrap_or(0);
            if front.req.len <= credit {
                buf.pop_front();
                self.credits.insert(dom, credit - front.req.len);
                if buf.is_empty() {
                    // Emptied by this pop: C_i = 0 and leave the rotation.
                    self.credits.insert(dom, 0);
                    self.current = None;
                } else if self.credits[&dom] == 0 {
                    self.rotation.push_back(dom);
                    self.current = None;
                }
                let bw = if front.remote {
                    self.params.copy_bw_remote
                } else {
                    self.params.copy_bw_local
                };
                let cost = self.params.per_req_overhead
                    + SimDuration::from_secs_f64(front.req.len as f64 / bw as f64);
                self.in_process = Some(InProcess {
                    dom,
                    req: front.req,
                    enqueued: front.enqueued,
                });
                return Some(now + cost);
            }
            // Credit insufficient: break to the next domain in the round,
            // banking the credit (classic deficit round-robin).
            self.rotation.push_back(dom);
            self.current = None;
        }
        None
    }

    /// Finish the in-flight request at `now`; returns `(vm, request)` for
    /// forwarding to the host block layer.
    pub fn finish(&mut self, now: SimTime) -> (DomainId, IoRequest) {
        let ip = self.in_process.take().expect("finish without start");
        let lat_us = now.saturating_since(ip.enqueued).as_micros_f64();
        // EWMA with alpha 0.2 — responsive but stable, matching the paper's
        // "updates every second or on >50% change" cadence.
        self.ewma_latency_us = if self.processed == 0 {
            lat_us
        } else {
            0.8 * self.ewma_latency_us + 0.2 * lat_us
        };
        self.processed += 1;
        *self.bytes.entry(ip.dom).or_insert(0) += ip.req.len;
        (ip.dom, ip.req)
    }

    /// Remove a VM (teardown), returning any still-buffered requests.
    pub fn remove_domain(&mut self, dom: DomainId) -> Vec<IoRequest> {
        self.rotation.retain(|&d| d != dom);
        if self.current == Some(dom) {
            self.current = None;
        }
        self.credits.remove(&dom);
        self.quanta.remove(&dom);
        self.buffers
            .remove(&dom)
            .map(|b| b.into_iter().map(|x| x.req).collect())
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iorch_storage::{IoKind, RequestId, StreamId};

    fn req(id: u64, len: u64) -> IoRequest {
        IoRequest {
            id: RequestId(id),
            kind: IoKind::Read,
            stream: StreamId(0),
            offset: id * (1 << 20),
            len,
            submitted: SimTime::ZERO,
        }
    }

    fn drain(core: &mut IoCore, mut now: SimTime) -> Vec<(DomainId, u64)> {
        let mut order = Vec::new();
        while let Some(done) = core.start_next(now) {
            now = done;
            let (dom, r) = core.finish(now);
            order.push((dom, r.id.0));
        }
        order
    }

    #[test]
    fn single_vm_fifo() {
        let mut core = IoCore::new(0, CoreId(0), IoCoreParams::default());
        for i in 0..5 {
            core.enqueue(DomainId(1), req(i, 4096), false, SimTime::ZERO);
        }
        let order = drain(&mut core, SimTime::ZERO);
        assert_eq!(order, (0..5).map(|i| (DomainId(1), i)).collect::<Vec<_>>());
    }

    #[test]
    fn processing_cost_includes_copy() {
        let mut core = IoCore::new(0, CoreId(0), IoCoreParams::default());
        core.enqueue(DomainId(1), req(0, 6_000_000), false, SimTime::ZERO);
        let done = core.start_next(SimTime::ZERO).unwrap();
        // 6 MB at 6 GB/s = 1 ms plus 3us overhead.
        assert!(done >= SimTime::from_millis(1));
        assert!(done < SimTime::from_micros(1100));
        core.finish(done);
        assert_eq!(core.processed_count(), 1);
    }

    #[test]
    fn remote_copy_is_slower() {
        let p = IoCoreParams::default();
        let mut a = IoCore::new(0, CoreId(0), p);
        let mut b = IoCore::new(0, CoreId(0), p);
        a.enqueue(DomainId(1), req(0, 1 << 20), false, SimTime::ZERO);
        b.enqueue(DomainId(1), req(0, 1 << 20), true, SimTime::ZERO);
        let la = a.start_next(SimTime::ZERO).unwrap();
        let lb = b.start_next(SimTime::ZERO).unwrap();
        assert!(lb > la);
    }

    #[test]
    fn drr_shares_follow_quanta() {
        let mut core = IoCore::new(0, CoreId(0), IoCoreParams::default());
        core.set_quantum(DomainId(1), 3 * 64 * 1024);
        core.set_quantum(DomainId(2), 64 * 1024);
        // Backlog 40 requests of 64 KiB each per VM.
        for i in 0..40 {
            core.enqueue(DomainId(1), req(i, 64 * 1024), false, SimTime::ZERO);
            core.enqueue(DomainId(2), req(100 + i, 64 * 1024), false, SimTime::ZERO);
        }
        // Process 24 requests; expect ~3:1 split.
        let mut now = SimTime::ZERO;
        let mut counts = BTreeMap::new();
        for _ in 0..24 {
            let done = core.start_next(now).unwrap();
            now = done;
            let (dom, _) = core.finish(now);
            *counts.entry(dom).or_insert(0) += 1;
        }
        let c1 = counts[&DomainId(1)];
        let c2 = counts[&DomainId(2)];
        assert!(c1 >= 16 && c2 >= 5, "c1={c1} c2={c2}");
    }

    #[test]
    fn big_request_banks_credit_across_rounds() {
        let mut core = IoCore::new(0, CoreId(0), IoCoreParams::default());
        core.set_quantum(DomainId(1), 64 * 1024);
        core.set_quantum(DomainId(2), 64 * 1024);
        // VM1 has one 256 KiB request (needs 4 rounds of credit);
        // VM2 has small requests that flow meanwhile.
        core.enqueue(DomainId(1), req(0, 256 * 1024), false, SimTime::ZERO);
        for i in 0..10 {
            core.enqueue(DomainId(2), req(10 + i, 32 * 1024), false, SimTime::ZERO);
        }
        let order = drain(&mut core, SimTime::ZERO);
        // The big request is eventually served.
        assert!(order.contains(&(DomainId(1), 0)));
        // And VM2 was not starved before it: some VM2 requests precede it.
        let big_pos = order
            .iter()
            .position(|&(d, i)| d == DomainId(1) && i == 0)
            .unwrap();
        assert!(big_pos > 0, "big request should wait for banked credit");
    }

    #[test]
    fn emptied_buffer_forfeits_credit() {
        let mut core = IoCore::new(0, CoreId(0), IoCoreParams::default());
        core.set_quantum(DomainId(1), 1 << 20);
        core.enqueue(DomainId(1), req(0, 4096), false, SimTime::ZERO);
        let done = core.start_next(SimTime::ZERO).unwrap();
        core.finish(done);
        // Credit was zeroed when the buffer emptied (Algorithm 3).
        assert_eq!(core.backlog_of(DomainId(1)), 0);
        // New work still flows (fresh quantum on next visit).
        core.enqueue(DomainId(1), req(1, 4096), false, done);
        assert!(core.start_next(done).is_some());
    }

    #[test]
    fn latency_ewma_tracks() {
        let mut core = IoCore::new(0, CoreId(0), IoCoreParams::default());
        core.enqueue(DomainId(1), req(0, 4096), false, SimTime::ZERO);
        let done = core.start_next(SimTime::ZERO).unwrap();
        core.finish(done);
        assert!(core.avg_latency() > SimDuration::ZERO);
    }

    #[test]
    fn remove_domain_returns_backlog() {
        let mut core = IoCore::new(0, CoreId(0), IoCoreParams::default());
        for i in 0..3 {
            core.enqueue(DomainId(5), req(i, 4096), false, SimTime::ZERO);
        }
        let dropped = core.remove_domain(DomainId(5));
        assert_eq!(dropped.len(), 3);
        assert_eq!(core.backlog(), 0);
        assert!(core.start_next(SimTime::ZERO).is_none());
    }

    #[test]
    fn busy_core_refuses_second_start() {
        let mut core = IoCore::new(0, CoreId(0), IoCoreParams::default());
        core.enqueue(DomainId(1), req(0, 4096), false, SimTime::ZERO);
        core.enqueue(DomainId(1), req(1, 4096), false, SimTime::ZERO);
        assert!(core.start_next(SimTime::ZERO).is_some());
        assert!(core.busy());
        assert!(core.start_next(SimTime::ZERO).is_none());
    }
}
