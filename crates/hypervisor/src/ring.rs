//! Frontend/backend shared ring.
//!
//! Paravirtual block I/O travels from the guest's frontend driver to the
//! host's backend through a shared ring with doorbell (event-channel)
//! notifications. The ring batches naturally: the first request in an
//! empty ring rings the doorbell; the backend then drains the whole batch.

use std::collections::VecDeque;

use iorch_simcore::SimTime;
use iorch_storage::IoRequest;

/// Outcome of pushing into the ring.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RingPush {
    /// Pushed; the backend is already aware (no doorbell needed).
    Queued,
    /// Pushed and the doorbell must be rung (backend was idle).
    NeedDoorbell,
    /// Ring full; the frontend must retry after completions.
    Full,
}

/// A one-direction request ring.
#[derive(Clone, Debug)]
pub struct Ring {
    q: VecDeque<(IoRequest, SimTime)>,
    capacity: usize,
    backend_active: bool,
    doorbells: u64,
    pushed: u64,
}

impl Ring {
    /// Ring with a given slot capacity (Xen blkfront uses 32–256; we default
    /// higher because the guest queue is the real throttle).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        Ring {
            q: VecDeque::new(),
            capacity,
            backend_active: false,
            doorbells: 0,
            pushed: 0,
        }
    }

    /// Requests waiting in the ring.
    pub fn len(&self) -> usize {
        self.q.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.q.is_empty()
    }

    /// Doorbells rung so far (notification count — the cost SDC removes).
    pub fn doorbell_count(&self) -> u64 {
        self.doorbells
    }

    /// Total requests pushed.
    pub fn pushed_count(&self) -> u64 {
        self.pushed
    }

    /// Push a request at `now`.
    pub fn push(&mut self, req: IoRequest, now: SimTime) -> RingPush {
        if self.q.len() >= self.capacity {
            return RingPush::Full;
        }
        self.q.push_back((req, now));
        self.pushed += 1;
        if self.backend_active {
            RingPush::Queued
        } else {
            self.backend_active = true;
            self.doorbells += 1;
            RingPush::NeedDoorbell
        }
    }

    /// Backend drains up to `max` requests. When the ring empties the
    /// backend goes back to sleep (the next push needs a doorbell).
    pub fn drain(&mut self, max: usize) -> Vec<(IoRequest, SimTime)> {
        let n = max.min(self.q.len());
        let batch: Vec<_> = self.q.drain(..n).collect();
        if self.q.is_empty() {
            self.backend_active = false;
        }
        batch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iorch_storage::{IoKind, RequestId, StreamId};

    fn req(id: u64) -> IoRequest {
        IoRequest {
            id: RequestId(id),
            kind: IoKind::Read,
            stream: StreamId(0),
            offset: 0,
            len: 4096,
            submitted: SimTime::ZERO,
        }
    }

    #[test]
    fn first_push_rings_doorbell() {
        let mut r = Ring::new(8);
        assert_eq!(r.push(req(0), SimTime::ZERO), RingPush::NeedDoorbell);
        assert_eq!(r.push(req(1), SimTime::ZERO), RingPush::Queued);
        assert_eq!(r.doorbell_count(), 1);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn drain_batches_and_resets_doorbell() {
        let mut r = Ring::new(8);
        r.push(req(0), SimTime::ZERO);
        r.push(req(1), SimTime::ZERO);
        let batch = r.drain(10);
        assert_eq!(batch.len(), 2);
        assert!(r.is_empty());
        // Backend slept again: next push needs a new doorbell.
        assert_eq!(r.push(req(2), SimTime::ZERO), RingPush::NeedDoorbell);
        assert_eq!(r.doorbell_count(), 2);
    }

    #[test]
    fn partial_drain_keeps_backend_active() {
        let mut r = Ring::new(8);
        for i in 0..4 {
            r.push(req(i), SimTime::ZERO);
        }
        let batch = r.drain(2);
        assert_eq!(batch.len(), 2);
        // Still active: pushes stay silent.
        assert_eq!(r.push(req(9), SimTime::ZERO), RingPush::Queued);
    }

    #[test]
    fn full_ring_rejects() {
        let mut r = Ring::new(2);
        r.push(req(0), SimTime::ZERO);
        r.push(req(1), SimTime::ZERO);
        assert_eq!(r.push(req(2), SimTime::ZERO), RingPush::Full);
        assert_eq!(r.pushed_count(), 2);
    }
}
