//! The shared system store — a XenStore work-alike.
//!
//! IOrchestra's information-exchange backbone (paper §3, §4): a
//! hierarchical key-value store maintained by the hypervisor where
//! "each guest domain stores their configuration data…, all VMs have
//! access to the store, but not all data fields. For security and privacy,
//! each VM can only access its own data… Only the hypervisor has the
//! access to the data of all VMs."
//!
//! Watches implement the publish–subscribe pattern of Fig. 3: a write to a
//! watched subtree queues a [`WatchEvent`] for the watch's owner; the
//! machine delivers those events over the (modelled) XenBus channel with a
//! small latency.

use std::collections::BTreeMap;

use crate::domain::DomainId;

/// Hypervisor / control domain: full access to every path.
pub const DOM0: DomainId = DomainId(0);

/// Errors from store operations.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StoreError {
    /// Path does not exist.
    NotFound,
    /// Caller lacks permission.
    PermissionDenied,
    /// Malformed path (empty segment, no leading `/`).
    BadPath,
    /// Unknown transaction id.
    BadTransaction,
}

/// Per-node permissions (simplified Xen model: an owner domain plus
/// world-readable / world-writable bits).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Perms {
    /// Domain with read/write rights.
    pub owner: DomainId,
    /// Whether other domains may read.
    pub others_read: bool,
    /// Whether other domains may write.
    pub others_write: bool,
}

impl Perms {
    /// Owned by dom0, private.
    pub fn dom0_private() -> Self {
        Perms {
            owner: DOM0,
            others_read: false,
            others_write: false,
        }
    }

    /// Owned by a domain, private to it (and dom0).
    pub fn private_to(owner: DomainId) -> Self {
        Perms {
            owner,
            others_read: false,
            others_write: false,
        }
    }

    fn can_read(&self, caller: DomainId) -> bool {
        caller == DOM0 || caller == self.owner || self.others_read
    }

    fn can_write(&self, caller: DomainId) -> bool {
        caller == DOM0 || caller == self.owner || self.others_write
    }
}

#[derive(Clone, Debug)]
struct Node {
    value: Option<String>,
    perms: Perms,
    children: BTreeMap<String, Node>,
}

impl Node {
    fn new(perms: Perms) -> Self {
        Node {
            value: None,
            perms,
            children: BTreeMap::new(),
        }
    }
}

/// Identifies a registered watch.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct WatchId(pub u64);

/// A queued watch firing: `path` changed, notify `owner`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct WatchEvent {
    /// The watch that fired.
    pub watch: WatchId,
    /// Domain to notify.
    pub owner: DomainId,
    /// The path that was written or removed.
    pub path: String,
    /// New value (`None` for a removal).
    pub value: Option<String>,
}

#[derive(Clone, Debug)]
struct Watch {
    id: WatchId,
    owner: DomainId,
    prefix: String,
}

/// Identifies an open transaction.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TxnId(pub u64);

/// The system store.
#[derive(Clone, Debug)]
pub struct XenStore {
    root: Node,
    watches: Vec<Watch>,
    next_watch: u64,
    pending: Vec<WatchEvent>,
    txns: BTreeMap<u64, Vec<(DomainId, String, String)>>,
    next_txn: u64,
    write_counts: BTreeMap<DomainId, u64>,
}

fn split_path(path: &str) -> Result<Vec<&str>, StoreError> {
    if !path.starts_with('/') {
        return Err(StoreError::BadPath);
    }
    if path == "/" {
        return Ok(Vec::new());
    }
    let segs: Vec<&str> = path[1..].split('/').collect();
    if segs.iter().any(|s| s.is_empty()) {
        return Err(StoreError::BadPath);
    }
    Ok(segs)
}

impl Default for XenStore {
    fn default() -> Self {
        Self::new()
    }
}

impl XenStore {
    /// Empty store; the root is dom0-owned and world-readable.
    pub fn new() -> Self {
        XenStore {
            root: Node::new(Perms {
                owner: DOM0,
                others_read: true,
                others_write: false,
            }),
            watches: Vec::new(),
            next_watch: 0,
            pending: Vec::new(),
            txns: BTreeMap::new(),
            next_txn: 0,
            write_counts: BTreeMap::new(),
        }
    }

    fn lookup(&self, segs: &[&str]) -> Option<&Node> {
        let mut node = &self.root;
        for s in segs {
            node = node.children.get(*s)?;
        }
        Some(node)
    }

    fn lookup_mut(&mut self, segs: &[&str]) -> Option<&mut Node> {
        let mut node = &mut self.root;
        for s in segs {
            node = node.children.get_mut(*s)?;
        }
        Some(node)
    }

    /// Read a value.
    pub fn read(&self, caller: DomainId, path: &str) -> Result<String, StoreError> {
        let segs = split_path(path)?;
        let node = self.lookup(&segs).ok_or(StoreError::NotFound)?;
        if !node.perms.can_read(caller) {
            return Err(StoreError::PermissionDenied);
        }
        node.value.clone().ok_or(StoreError::NotFound)
    }

    /// Write a value, creating intermediate nodes. Intermediate and leaf
    /// nodes created by the write inherit the nearest existing ancestor's
    /// permissions; writing into an existing node requires write permission
    /// on it.
    pub fn write(
        &mut self,
        caller: DomainId,
        path: &str,
        value: impl Into<String>,
    ) -> Result<(), StoreError> {
        let segs = split_path(path)?;
        if segs.is_empty() {
            return Err(StoreError::BadPath);
        }
        // Walk down, checking write permission on the deepest existing node.
        {
            let mut node = &self.root;
            let mut deepest = node;
            for s in &segs {
                match node.children.get(*s) {
                    Some(child) => {
                        node = child;
                        deepest = child;
                    }
                    None => break,
                }
            }
            if !deepest.perms.can_write(caller) {
                return Err(StoreError::PermissionDenied);
            }
        }
        // Create the chain with inherited perms.
        let mut node = &mut self.root;
        for s in &segs {
            let inherited = node.perms;
            node = node
                .children
                .entry((*s).to_string())
                .or_insert_with(|| Node::new(inherited));
        }
        let value = value.into();
        node.value = Some(value.clone());
        *self.write_counts.entry(caller).or_insert(0) += 1;
        self.fire_watches(path, Some(value));
        Ok(())
    }

    /// Remove a node (and its subtree).
    pub fn remove(&mut self, caller: DomainId, path: &str) -> Result<(), StoreError> {
        let segs = split_path(path)?;
        if segs.is_empty() {
            return Err(StoreError::BadPath);
        }
        let (parent_segs, leaf) = segs.split_at(segs.len() - 1);
        let node = self.lookup(&segs).ok_or(StoreError::NotFound)?;
        if !node.perms.can_write(caller) {
            return Err(StoreError::PermissionDenied);
        }
        let parent = self.lookup_mut(parent_segs).ok_or(StoreError::NotFound)?;
        parent.children.remove(leaf[0]);
        self.fire_watches(path, None);
        Ok(())
    }

    /// List child names of a directory node.
    pub fn list(&self, caller: DomainId, path: &str) -> Result<Vec<String>, StoreError> {
        let segs = split_path(path)?;
        let node = self.lookup(&segs).ok_or(StoreError::NotFound)?;
        if !node.perms.can_read(caller) {
            return Err(StoreError::PermissionDenied);
        }
        Ok(node.children.keys().cloned().collect())
    }

    /// Set permissions on an existing node. Only dom0 or the current owner
    /// may change them.
    pub fn set_perms(
        &mut self,
        caller: DomainId,
        path: &str,
        perms: Perms,
    ) -> Result<(), StoreError> {
        let segs = split_path(path)?;
        let node = self.lookup_mut(&segs).ok_or(StoreError::NotFound)?;
        if caller != DOM0 && caller != node.perms.owner {
            return Err(StoreError::PermissionDenied);
        }
        node.perms = perms;
        Ok(())
    }

    /// Create a directory node with explicit permissions (dom0 setup path;
    /// also allowed for a domain inside its own subtree).
    pub fn mkdir(
        &mut self,
        caller: DomainId,
        path: &str,
        perms: Perms,
    ) -> Result<(), StoreError> {
        let segs = split_path(path)?;
        if segs.is_empty() {
            return Err(StoreError::BadPath);
        }
        // Permission to create: write permission at the deepest existing node.
        {
            let mut node = &self.root;
            let mut deepest = node;
            for s in &segs {
                match node.children.get(*s) {
                    Some(child) => {
                        node = child;
                        deepest = child;
                    }
                    None => break,
                }
            }
            if !deepest.perms.can_write(caller) {
                return Err(StoreError::PermissionDenied);
            }
        }
        let mut node = &mut self.root;
        for s in &segs {
            let inherited = node.perms;
            node = node
                .children
                .entry((*s).to_string())
                .or_insert_with(|| Node::new(inherited));
        }
        node.perms = perms;
        Ok(())
    }

    /// Register a watch on a path prefix. Any write/remove at or below the
    /// prefix queues a [`WatchEvent`] for `owner`.
    pub fn watch(&mut self, owner: DomainId, prefix: impl Into<String>) -> WatchId {
        let id = WatchId(self.next_watch);
        self.next_watch += 1;
        self.watches.push(Watch {
            id,
            owner,
            prefix: prefix.into(),
        });
        id
    }

    /// Remove a watch.
    pub fn unwatch(&mut self, id: WatchId) -> bool {
        let before = self.watches.len();
        self.watches.retain(|w| w.id != id);
        self.watches.len() != before
    }

    fn fire_watches(&mut self, path: &str, value: Option<String>) {
        for w in &self.watches {
            let hit = path == w.prefix
                || (path.starts_with(&w.prefix)
                    && path.as_bytes().get(w.prefix.len()) == Some(&b'/'))
                || w.prefix == "/";
            if hit {
                self.pending.push(WatchEvent {
                    watch: w.id,
                    owner: w.owner,
                    path: path.to_string(),
                    value: value.clone(),
                });
            }
        }
    }

    /// Drain queued watch events (the machine delivers them over XenBus).
    pub fn take_events(&mut self) -> Vec<WatchEvent> {
        std::mem::take(&mut self.pending)
    }

    /// Whether any watch events are queued.
    pub fn has_events(&self) -> bool {
        !self.pending.is_empty()
    }

    /// Begin a transaction: writes are buffered and applied atomically at
    /// commit (no isolation conflicts modelled — the paper's policies are
    /// single-writer per key).
    pub fn txn_begin(&mut self) -> TxnId {
        let id = self.next_txn;
        self.next_txn += 1;
        self.txns.insert(id, Vec::new());
        TxnId(id)
    }

    /// Buffer a write inside a transaction (permissions checked at commit).
    pub fn txn_write(
        &mut self,
        txn: TxnId,
        caller: DomainId,
        path: impl Into<String>,
        value: impl Into<String>,
    ) -> Result<(), StoreError> {
        let buf = self.txns.get_mut(&txn.0).ok_or(StoreError::BadTransaction)?;
        buf.push((caller, path.into(), value.into()));
        Ok(())
    }

    /// Commit a transaction. If any write fails its permission check the
    /// whole transaction is rolled back and the error returned.
    pub fn txn_commit(&mut self, txn: TxnId) -> Result<(), StoreError> {
        let buf = self.txns.remove(&txn.0).ok_or(StoreError::BadTransaction)?;
        // Validate first against a clone (cheap at our scale), then apply.
        let mut probe = self.clone();
        probe.watches.clear();
        for (caller, path, value) in &buf {
            probe.write(*caller, path, value.clone())?;
        }
        for (caller, path, value) in buf {
            self.write(caller, &path, value)?;
        }
        Ok(())
    }

    /// Abort a transaction.
    pub fn txn_abort(&mut self, txn: TxnId) -> Result<(), StoreError> {
        self.txns.remove(&txn.0).ok_or(StoreError::BadTransaction)?;
        Ok(())
    }

    /// Writes performed by a domain — input for the anomaly detector
    /// ("IOrchestra can be configured to identify malicious VMs").
    pub fn write_count(&self, dom: DomainId) -> u64 {
        self.write_counts.get(&dom).copied().unwrap_or(0)
    }

    /// Conventional per-domain subtree root, as in Xen.
    pub fn domain_path(dom: DomainId) -> String {
        format!("/local/domain/{}", dom.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(n: u32) -> DomainId {
        DomainId(n)
    }

    fn store_with_domain(dom: DomainId) -> XenStore {
        let mut s = XenStore::new();
        let path = XenStore::domain_path(dom);
        s.mkdir(DOM0, &path, Perms::private_to(dom)).unwrap();
        s
    }

    #[test]
    fn write_read_roundtrip() {
        let mut s = store_with_domain(d(1));
        s.write(d(1), "/local/domain/1/virt-dev/flush_now", "1").unwrap();
        assert_eq!(
            s.read(d(1), "/local/domain/1/virt-dev/flush_now").unwrap(),
            "1"
        );
    }

    #[test]
    fn dom0_reads_everything() {
        let mut s = store_with_domain(d(1));
        s.write(d(1), "/local/domain/1/secret", "42").unwrap();
        assert_eq!(s.read(DOM0, "/local/domain/1/secret").unwrap(), "42");
    }

    #[test]
    fn cross_domain_access_denied() {
        let mut s = store_with_domain(d(1));
        s.mkdir(DOM0, "/local/domain/2", Perms::private_to(d(2))).unwrap();
        s.write(d(1), "/local/domain/1/nr", "100").unwrap();
        // Domain 2 can neither read nor write domain 1's subtree.
        assert_eq!(
            s.read(d(2), "/local/domain/1/nr"),
            Err(StoreError::PermissionDenied)
        );
        assert_eq!(
            s.write(d(2), "/local/domain/1/nr", "0"),
            Err(StoreError::PermissionDenied)
        );
        // And cannot create nodes there either.
        assert_eq!(
            s.write(d(2), "/local/domain/1/evil", "x"),
            Err(StoreError::PermissionDenied)
        );
    }

    #[test]
    fn created_nodes_inherit_perms() {
        let mut s = store_with_domain(d(1));
        s.write(d(1), "/local/domain/1/a/b/c", "v").unwrap();
        // The intermediate nodes are private to domain 1.
        assert_eq!(
            s.read(d(2), "/local/domain/1/a/b/c"),
            Err(StoreError::PermissionDenied)
        );
        assert_eq!(s.read(d(1), "/local/domain/1/a/b/c").unwrap(), "v");
    }

    #[test]
    fn missing_path_not_found() {
        let s = XenStore::new();
        assert_eq!(s.read(DOM0, "/nope"), Err(StoreError::NotFound));
    }

    #[test]
    fn bad_paths_rejected() {
        let mut s = XenStore::new();
        assert_eq!(s.write(DOM0, "relative", "x"), Err(StoreError::BadPath));
        assert_eq!(s.write(DOM0, "//double", "x"), Err(StoreError::BadPath));
        assert_eq!(s.write(DOM0, "/", "x"), Err(StoreError::BadPath));
    }

    #[test]
    fn remove_subtree() {
        let mut s = store_with_domain(d(1));
        s.write(d(1), "/local/domain/1/a/b", "v").unwrap();
        s.remove(d(1), "/local/domain/1/a").unwrap();
        assert_eq!(
            s.read(d(1), "/local/domain/1/a/b"),
            Err(StoreError::NotFound)
        );
    }

    #[test]
    fn list_children() {
        let mut s = store_with_domain(d(1));
        s.write(d(1), "/local/domain/1/x", "1").unwrap();
        s.write(d(1), "/local/domain/1/y", "2").unwrap();
        let kids = s.list(d(1), "/local/domain/1").unwrap();
        assert_eq!(kids, vec!["x".to_string(), "y".to_string()]);
    }

    #[test]
    fn watch_fires_on_subtree_write() {
        let mut s = store_with_domain(d(1));
        let w = s.watch(DOM0, "/local/domain/1");
        s.write(d(1), "/local/domain/1/has_dirty_pages", "1").unwrap();
        let evs = s.take_events();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].watch, w);
        assert_eq!(evs[0].owner, DOM0);
        assert_eq!(evs[0].path, "/local/domain/1/has_dirty_pages");
        assert_eq!(evs[0].value.as_deref(), Some("1"));
        // Drained.
        assert!(s.take_events().is_empty());
    }

    #[test]
    fn watch_prefix_must_match_segment_boundary() {
        let mut s = XenStore::new();
        s.watch(DOM0, "/a/b");
        s.write(DOM0, "/a/bc", "x").unwrap();
        assert!(s.take_events().is_empty(), "no boundary-crossing matches");
        s.write(DOM0, "/a/b", "x").unwrap();
        assert_eq!(s.take_events().len(), 1);
        s.write(DOM0, "/a/b/c", "x").unwrap();
        assert_eq!(s.take_events().len(), 1);
    }

    #[test]
    fn watch_fires_on_remove() {
        let mut s = XenStore::new();
        s.write(DOM0, "/a/b", "x").unwrap();
        s.take_events();
        s.watch(d(3), "/a");
        s.remove(DOM0, "/a/b").unwrap();
        let evs = s.take_events();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].owner, d(3));
        assert!(evs[0].value.is_none());
    }

    #[test]
    fn unwatch_stops_events() {
        let mut s = XenStore::new();
        let w = s.watch(DOM0, "/a");
        assert!(s.unwatch(w));
        assert!(!s.unwatch(w));
        s.write(DOM0, "/a/b", "x").unwrap();
        assert!(s.take_events().is_empty());
    }

    #[test]
    fn multiple_watches_fire_independently() {
        let mut s = XenStore::new();
        s.watch(d(1), "/shared");
        s.watch(d(2), "/shared");
        s.write(DOM0, "/shared/v", "7").unwrap();
        let evs = s.take_events();
        assert_eq!(evs.len(), 2);
        let owners: Vec<DomainId> = evs.iter().map(|e| e.owner).collect();
        assert!(owners.contains(&d(1)) && owners.contains(&d(2)));
    }

    #[test]
    fn transaction_commit_applies_all() {
        let mut s = store_with_domain(d(1));
        let t = s.txn_begin();
        s.txn_write(t, d(1), "/local/domain/1/a", "1").unwrap();
        s.txn_write(t, d(1), "/local/domain/1/b", "2").unwrap();
        s.txn_commit(t).unwrap();
        assert_eq!(s.read(d(1), "/local/domain/1/a").unwrap(), "1");
        assert_eq!(s.read(d(1), "/local/domain/1/b").unwrap(), "2");
    }

    #[test]
    fn transaction_rolls_back_on_denied_write() {
        let mut s = store_with_domain(d(1));
        s.mkdir(DOM0, "/local/domain/2", Perms::private_to(d(2))).unwrap();
        let t = s.txn_begin();
        s.txn_write(t, d(1), "/local/domain/1/ok", "1").unwrap();
        s.txn_write(t, d(1), "/local/domain/2/evil", "1").unwrap();
        assert_eq!(s.txn_commit(t), Err(StoreError::PermissionDenied));
        // Nothing applied.
        assert_eq!(s.read(d(1), "/local/domain/1/ok"), Err(StoreError::NotFound));
    }

    #[test]
    fn transaction_abort_discards() {
        let mut s = store_with_domain(d(1));
        let t = s.txn_begin();
        s.txn_write(t, d(1), "/local/domain/1/a", "1").unwrap();
        s.txn_abort(t).unwrap();
        assert_eq!(s.read(d(1), "/local/domain/1/a"), Err(StoreError::NotFound));
        assert_eq!(s.txn_commit(t), Err(StoreError::BadTransaction));
    }

    #[test]
    fn write_counts_tracked_per_domain() {
        let mut s = store_with_domain(d(1));
        for _ in 0..5 {
            s.write(d(1), "/local/domain/1/x", "v").unwrap();
        }
        assert_eq!(s.write_count(d(1)), 5);
        assert_eq!(s.write_count(d(9)), 0);
    }

    #[test]
    fn set_perms_owner_only() {
        let mut s = store_with_domain(d(1));
        s.write(d(1), "/local/domain/1/x", "v").unwrap();
        let open = Perms {
            owner: d(1),
            others_read: true,
            others_write: false,
        };
        assert_eq!(
            s.set_perms(d(2), "/local/domain/1/x", open),
            Err(StoreError::PermissionDenied)
        );
        s.set_perms(d(1), "/local/domain/1/x", open).unwrap();
        assert_eq!(s.read(d(2), "/local/domain/1/x").unwrap(), "v");
    }
}
