//! The shared system store — a XenStore work-alike.
//!
//! IOrchestra's information-exchange backbone (paper §3, §4): a
//! hierarchical key-value store maintained by the hypervisor where
//! "each guest domain stores their configuration data…, all VMs have
//! access to the store, but not all data fields. For security and privacy,
//! each VM can only access its own data… Only the hypervisor has the
//! access to the data of all VMs."
//!
//! Watches implement the publish–subscribe pattern of Fig. 3: a write to a
//! watched subtree queues a [`WatchEvent`] for the watch's owner; the
//! machine delivers those events over the (modelled) XenBus channel with a
//! small latency.
//!
//! # Hot path
//!
//! The store sits on the path of every Algorithm 1–3 decision, so every
//! per-operation allocation the seed implementation made has been removed:
//!
//! * Paths are walked with an iterator — no per-op `Vec<&str>`.
//! * [`StorePath`] interns a validated path as an `Rc<str>`; policy code
//!   parses its keys once per domain and clones them for free.
//! * Values live as `Rc<str>`; watch-event payloads share them instead of
//!   cloning a `String` per subscriber, and [`XenStore::read_ref`] borrows
//!   straight out of the tree.
//! * Watches are indexed by their full prefix. A write enumerates the
//!   ancestor prefixes of its path (cost: path depth), so non-matching
//!   watches cost nothing — the seed scanned every watch on every write.
//! * [`XenStore::write_if_changed`] suppresses no-op republishes entirely.
//! * Transactions validate permissions by walking the live tree; the seed
//!   cloned the whole store per commit.
//!
//! The seed implementation is preserved verbatim in
//! [`crate::xenstore_legacy`] as a differential-test oracle and benchmark
//! baseline.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::ops::Deref;
use std::rc::Rc;

use iorch_simcore::trace::TraceEventKind;
use iorch_simcore::{trace_event, SimTime};

use crate::domain::DomainId;

/// Hypervisor / control domain: full access to every path.
pub const DOM0: DomainId = DomainId(0);

/// Errors from store operations.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StoreError {
    /// Path does not exist.
    NotFound,
    /// Caller lacks permission.
    PermissionDenied,
    /// Malformed path (empty segment, no leading `/`).
    BadPath,
    /// Unknown transaction id.
    BadTransaction,
    /// A per-domain resource quota was exceeded (see [`StoreQuota`]).
    QuotaExceeded,
}

/// Per-domain resource limits, mirroring real XenStore's defenses against
/// a misbehaving guest (`quota-max-entries`, `quota-max-size`, and the
/// xenstored write-rate throttle). Enforced only for non-dom0 callers, and
/// only on stores where [`XenStore::set_quota`] was called — a bare
/// [`XenStore::new`] store is quota-free, which keeps the differential
/// oracle and the hot-path benches (both clock-less) byte-identical.
///
/// A limit of `0` means "unlimited" for that dimension.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct StoreQuota {
    /// Maximum number of store nodes a domain may own at once.
    pub max_owned_nodes: u64,
    /// Maximum length in bytes of a single written value.
    pub max_value_bytes: usize,
    /// Sustained write rate (token-bucket refill), writes per second.
    pub write_rate_per_sec: u64,
    /// Token-bucket capacity: writes that may land back-to-back.
    pub write_burst: u64,
}

impl StoreQuota {
    /// Defaults generous enough that a well-behaved guest (dirty-page
    /// publications, congestion handshakes, command acks) never trips
    /// them, while a `StoreHammer` at thousands of writes per second is
    /// throttled within one burst.
    pub fn generous() -> Self {
        StoreQuota {
            max_owned_nodes: 64,
            max_value_bytes: 256,
            write_rate_per_sec: 500,
            write_burst: 100,
        }
    }
}

/// One token = `TOKEN` nano-tokens, so refill math stays in integers.
const TOKEN: u64 = 1_000_000_000;

/// Per-domain token-bucket state for the write-rate quota.
#[derive(Clone, Copy, Debug)]
struct TokenBucket {
    /// Available nano-tokens (1 write costs [`TOKEN`]).
    nanos: u64,
    /// Last refill timestamp.
    last: SimTime,
}

/// Per-node permissions (simplified Xen model: an owner domain plus
/// world-readable / world-writable bits).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Perms {
    /// Domain with read/write rights.
    pub owner: DomainId,
    /// Whether other domains may read.
    pub others_read: bool,
    /// Whether other domains may write.
    pub others_write: bool,
}

impl Perms {
    /// Owned by dom0, private.
    pub fn dom0_private() -> Self {
        Perms {
            owner: DOM0,
            others_read: false,
            others_write: false,
        }
    }

    /// Owned by a domain, private to it (and dom0).
    pub fn private_to(owner: DomainId) -> Self {
        Perms {
            owner,
            others_read: false,
            others_write: false,
        }
    }

    /// Whether `caller` may read a node with these permissions.
    pub fn can_read(&self, caller: DomainId) -> bool {
        caller == DOM0 || caller == self.owner || self.others_read
    }

    /// Whether `caller` may write a node with these permissions.
    pub fn can_write(&self, caller: DomainId) -> bool {
        caller == DOM0 || caller == self.owner || self.others_write
    }
}

// --------------------------------------------------------------------
// Paths
// --------------------------------------------------------------------

fn validate_path(path: &str) -> Result<(), StoreError> {
    if !path.starts_with('/') {
        return Err(StoreError::BadPath);
    }
    if path == "/" {
        return Ok(());
    }
    // No empty segment: no "//" anywhere and no trailing '/'.
    let bytes = path.as_bytes();
    if bytes[bytes.len() - 1] == b'/' {
        return Err(StoreError::BadPath);
    }
    if bytes.windows(2).any(|w| w == b"//") {
        return Err(StoreError::BadPath);
    }
    Ok(())
}

/// Iterate the segments of an already-validated absolute path.
/// `"/"` yields nothing.
fn path_segments(path: &str) -> std::str::Split<'_, char> {
    // `""` has a single empty segment under split; normalise so the root
    // path iterates zero segments. `"/".split('/')` on the trimmed empty
    // string still yields one "", so handle via the trimmed slice below.
    let trimmed = if path == "/" { "" } else { &path[1..] };
    let mut it = trimmed.split('/');
    if trimmed.is_empty() {
        // Consume the single empty item so the iterator is empty.
        it.next();
    }
    it
}

/// A pre-validated, interned store path.
///
/// Parsing checks the same rules as the string entry points (leading `/`,
/// no empty segments); after that, passing a `StorePath` to the store is
/// allocation-free, and the path inside any resulting [`WatchEvent`] is a
/// reference-counted clone of this one. Policy code should build its keys
/// once per domain (see `iorchestra::keys::DomainKeys`) and reuse them
/// every tick.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StorePath {
    full: Rc<str>,
}

impl StorePath {
    /// Parse and intern a path.
    pub fn parse(path: &str) -> Result<Self, StoreError> {
        validate_path(path)?;
        Ok(StorePath {
            full: Rc::from(path),
        })
    }

    /// The path as a string slice.
    pub fn as_str(&self) -> &str {
        &self.full
    }

    /// A shared copy of the underlying string (refcount bump, no copy).
    pub fn shared(&self) -> Rc<str> {
        Rc::clone(&self.full)
    }

    /// Iterate the path's segments.
    pub fn segments(&self) -> impl Iterator<Item = &str> {
        path_segments(&self.full)
    }
}

impl Deref for StorePath {
    type Target = str;
    fn deref(&self) -> &str {
        &self.full
    }
}

impl AsRef<str> for StorePath {
    fn as_ref(&self) -> &str {
        &self.full
    }
}

impl fmt::Display for StorePath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.full)
    }
}

impl fmt::Debug for StorePath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "StorePath({})", &*self.full)
    }
}

/// Anything the store accepts as a path argument.
///
/// Strings are validated and walked in place; a [`StorePath`] additionally
/// hands the store a shareable `Rc<str>` so firing a watch never copies
/// the path.
pub trait AsStorePath {
    /// The path as a string slice.
    fn path_str(&self) -> &str;
    /// A pre-interned shared copy, if one exists. `None` means the store
    /// allocates one lazily — and only if a watch actually fires.
    fn to_shared(&self) -> Option<Rc<str>> {
        None
    }
}

impl AsStorePath for &str {
    fn path_str(&self) -> &str {
        self
    }
}

impl AsStorePath for String {
    fn path_str(&self) -> &str {
        self
    }
}

impl AsStorePath for &String {
    fn path_str(&self) -> &str {
        self
    }
}

impl AsStorePath for StorePath {
    fn path_str(&self) -> &str {
        &self.full
    }
    fn to_shared(&self) -> Option<Rc<str>> {
        Some(self.shared())
    }
}

impl AsStorePath for &StorePath {
    fn path_str(&self) -> &str {
        &self.full
    }
    fn to_shared(&self) -> Option<Rc<str>> {
        Some(self.shared())
    }
}

/// Anything the store accepts as a value argument. Cached `Rc<str>`
/// encodings (see `iorchestra::keys::val`) pass through with a refcount
/// bump; borrowed strings are copied once, at the final write site.
pub trait IntoStoreValue {
    /// The value as a string slice (used for change detection without
    /// committing to an allocation).
    fn value_str(&self) -> &str;
    /// Convert into the stored representation.
    fn into_value(self) -> Rc<str>;
}

impl IntoStoreValue for Rc<str> {
    fn value_str(&self) -> &str {
        self
    }
    fn into_value(self) -> Rc<str> {
        self
    }
}

impl IntoStoreValue for &Rc<str> {
    fn value_str(&self) -> &str {
        self
    }
    fn into_value(self) -> Rc<str> {
        Rc::clone(self)
    }
}

impl IntoStoreValue for &str {
    fn value_str(&self) -> &str {
        self
    }
    fn into_value(self) -> Rc<str> {
        Rc::from(self)
    }
}

impl IntoStoreValue for String {
    fn value_str(&self) -> &str {
        self
    }
    fn into_value(self) -> Rc<str> {
        Rc::from(self)
    }
}

impl IntoStoreValue for &String {
    fn value_str(&self) -> &str {
        self
    }
    fn into_value(self) -> Rc<str> {
        Rc::from(self.as_str())
    }
}

// --------------------------------------------------------------------
// Nodes, watches, events
// --------------------------------------------------------------------

#[derive(Clone, Debug)]
struct Node {
    value: Option<Rc<str>>,
    perms: Perms,
    children: BTreeMap<String, Node>,
}

impl Node {
    fn new(perms: Perms) -> Self {
        Node {
            value: None,
            perms,
            children: BTreeMap::new(),
        }
    }
}

/// Identifies a registered watch.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct WatchId(pub u64);

/// A queued watch firing: `path` changed, notify `owner`.
///
/// The payload strings are shared (`Rc<str>`): when several watches match
/// one write, every event references the same path and value allocation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct WatchEvent {
    /// The watch that fired.
    pub watch: WatchId,
    /// Domain to notify.
    pub owner: DomainId,
    /// The path that was written or removed.
    pub path: Rc<str>,
    /// New value (`None` for a removal).
    pub value: Option<Rc<str>>,
}

#[derive(Clone, Copy, Debug)]
struct Watch {
    id: WatchId,
    owner: DomainId,
}

/// Identifies an open transaction.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TxnId(pub u64);

/// The system store.
#[derive(Clone, Debug)]
pub struct XenStore {
    root: Node,
    /// Watches bucketed by their full prefix string. A write looks up each
    /// ancestor prefix of its path — O(depth) probes, independent of how
    /// many watches are registered elsewhere in the tree.
    watch_index: HashMap<Rc<str>, Vec<Watch>>,
    /// Reverse map for `unwatch`.
    watch_prefixes: BTreeMap<u64, Rc<str>>,
    next_watch: u64,
    pending: Vec<WatchEvent>,
    /// Recycled event buffer: [`XenStore::take_events`] hands `pending`
    /// out and installs this (empty, capacity retained) in its place;
    /// [`XenStore::recycle_events`] returns a drained buffer here. Keeps
    /// the write→flush→deliver cycle allocation-free at steady state.
    spare_events: Vec<WatchEvent>,
    /// Reused hit buffer for `fire_watches` (watch id, owner), doubling as
    /// a one-entry fan-out memo: while `memo_key` matches the written
    /// path's shared `Rc` (by pointer) and `memo_epoch` matches
    /// `watch_epoch`, the buffer is reused verbatim — repeated writes to
    /// one hot key (the common control-loop pattern) skip the ancestor
    /// prefix probes and the sort entirely.
    scratch_hits: Vec<(u64, DomainId)>,
    /// Path the memo in `scratch_hits` was computed for. Holding a clone
    /// of the `Rc` pins the allocation, so the pointer identity check
    /// can never alias a freed-and-reused address.
    memo_key: Option<Rc<str>>,
    /// Value of `watch_epoch` when the memo was computed.
    memo_epoch: u64,
    /// Bumped on every watch-set mutation, invalidating the memo.
    watch_epoch: u64,
    txns: BTreeMap<u64, Vec<(DomainId, StorePath, Rc<str>)>>,
    next_txn: u64,
    write_counts: BTreeMap<DomainId, u64>,
    /// Sum of all `write_counts` values. Monotonic: an unchanged total
    /// proves every per-domain count is unchanged, so per-tick anomaly
    /// scans can skip the domain loop in O(1).
    write_total: u64,
    /// Sum of all `denied_counts` values (same O(1) change check).
    denied_total: u64,
    /// Per-domain count of denied write-type operations (write /
    /// write_if_changed / remove / mkdir returning `PermissionDenied`) —
    /// the anomaly detector's "permission violation" signal. Bumped only
    /// on the error path, so the hot path never touches it.
    denied_counts: BTreeMap<DomainId, u64>,
    /// Sim-time stamp for trace events. The store itself is time-free;
    /// the machine refreshes this at each event-loop entry while a trace
    /// recorder is installed (see [`XenStore::set_trace_now`]).
    trace_now: SimTime,
    /// Per-domain resource limits; `None` (the default) disables all
    /// quota enforcement and accounting.
    quota: Option<StoreQuota>,
    /// Per-domain overrides of the base quota (policy `Quota` actions).
    /// Consulted only on stores with a base quota installed.
    quota_overrides: BTreeMap<DomainId, StoreQuota>,
    /// Write-rate token buckets, lazily created full per domain.
    buckets: BTreeMap<DomainId, TokenBucket>,
    /// Nodes currently owned per domain (maintained only with a quota
    /// installed; the quota must be set while the store is empty).
    owned_counts: BTreeMap<DomainId, u64>,
    /// Clock for the write-rate buckets, fed by [`XenStore::set_now`].
    now: SimTime,
}

impl Default for XenStore {
    fn default() -> Self {
        Self::new()
    }
}

impl XenStore {
    /// Empty store; the root is dom0-owned and world-readable.
    pub fn new() -> Self {
        XenStore {
            root: Node::new(Perms {
                owner: DOM0,
                others_read: true,
                others_write: false,
            }),
            watch_index: HashMap::new(),
            watch_prefixes: BTreeMap::new(),
            next_watch: 0,
            pending: Vec::new(),
            spare_events: Vec::new(),
            scratch_hits: Vec::new(),
            memo_key: None,
            memo_epoch: 0,
            watch_epoch: 0,
            txns: BTreeMap::new(),
            next_txn: 0,
            write_counts: BTreeMap::new(),
            write_total: 0,
            denied_counts: BTreeMap::new(),
            denied_total: 0,
            trace_now: SimTime::ZERO,
            quota: None,
            quota_overrides: BTreeMap::new(),
            buckets: BTreeMap::new(),
            owned_counts: BTreeMap::new(),
            now: SimTime::ZERO,
        }
    }

    /// Set the sim-time used to stamp trace events for subsequent store
    /// operations. Store methods take no clock of their own, so the
    /// machine pushes the current time here before running control-plane
    /// code — and only while a trace recorder is installed, keeping the
    /// untraced hot path untouched.
    pub fn set_trace_now(&mut self, now: SimTime) {
        self.trace_now = now;
    }

    /// Install per-domain quotas (see [`StoreQuota`]). Must be called
    /// while the store is empty so the owned-node accounting starts from
    /// zero; the machine does this at construction. Dom0 is exempt.
    pub fn set_quota(&mut self, quota: StoreQuota) {
        debug_assert!(
            self.root.children.is_empty(),
            "quotas must be installed on an empty store"
        );
        self.quota = Some(quota);
    }

    /// The installed quota, if any.
    pub fn quota(&self) -> Option<StoreQuota> {
        self.quota
    }

    /// Install (or with `None`, clear) a per-domain override of the base
    /// quota. Overrides are enforced only on stores where [`set_quota`]
    /// was called (machine stores always are); the owned-node accounting
    /// is shared with the base quota, so overrides may be swapped at any
    /// time. This is the store-side enforcement mechanism behind policy
    /// `Quota` actions.
    ///
    /// [`set_quota`]: XenStore::set_quota
    pub fn set_domain_quota(&mut self, dom: DomainId, quota: Option<StoreQuota>) {
        match quota {
            Some(q) => {
                self.quota_overrides.insert(dom, q);
            }
            None => {
                self.quota_overrides.remove(&dom);
            }
        }
    }

    /// The effective quota for `dom`: its override if one is installed,
    /// else the base quota.
    pub fn domain_quota(&self, dom: DomainId) -> Option<StoreQuota> {
        self.quota_overrides.get(&dom).copied().or(self.quota)
    }

    /// Advance the clock used by the write-rate token buckets. The store
    /// itself is time-free; the machine pushes the current sim time here
    /// at each event-loop entry. Monotonic (a stale time never refunds).
    pub fn set_now(&mut self, now: SimTime) {
        if now > self.now {
            self.now = now;
        }
    }

    /// Nodes currently owned by a domain (0 unless a quota is installed).
    pub fn owned_count(&self, dom: DomainId) -> u64 {
        self.owned_counts.get(&dom).copied().unwrap_or(0)
    }

    /// Refill every domain's write-rate token bucket to its full burst
    /// allowance. A recovering control plane calls this so that retries a
    /// guest burned against a dead dom0 do not carry over as an empty
    /// bucket — and a denial storm — the moment service resumes. No-op
    /// without an installed quota.
    pub fn quota_refill_all(&mut self) {
        let Some(base) = self.quota else { return };
        let now = self.now;
        for (dom, b) in self.buckets.iter_mut() {
            let q = self.quota_overrides.get(dom).copied().unwrap_or(base);
            b.nanos = q.write_burst.saturating_mul(TOKEN);
            b.last = now;
        }
    }

    /// Take one write token from `caller`'s bucket, refilling for elapsed
    /// time first. Returns whether the write may proceed.
    fn take_token(&mut self, caller: DomainId, quota: &StoreQuota) -> bool {
        if quota.write_rate_per_sec == 0 {
            return true;
        }
        let cap = quota.write_burst.saturating_mul(TOKEN);
        let now = self.now;
        let b = self.buckets.entry(caller).or_insert(TokenBucket {
            nanos: cap,
            last: now,
        });
        let elapsed = now.as_nanos().saturating_sub(b.last.as_nanos());
        b.last = now;
        b.nanos = b
            .nanos
            .saturating_add(elapsed.saturating_mul(quota.write_rate_per_sec))
            .min(cap);
        if b.nanos >= TOKEN {
            b.nanos -= TOKEN;
            true
        } else {
            false
        }
    }

    /// Segments of `path` that do not exist yet (nodes a write would
    /// create). Only called on the quota-enforced slow path.
    fn missing_nodes(&self, path: &str) -> u64 {
        let mut node = Some(&self.root);
        let mut missing = 0u64;
        for s in path_segments(path) {
            match node.and_then(|n| n.children.get(s)) {
                Some(child) => node = Some(child),
                None => {
                    node = None;
                    missing += 1;
                }
            }
        }
        missing
    }

    /// Enforce the installed quota for a write-type operation: one rate
    /// token, the value-size cap, and the owned-node cap (counting nodes
    /// the write would create). Trips feed the denied-op counters and the
    /// trace layer like permission violations.
    fn enforce_quota(
        &mut self,
        caller: DomainId,
        path: &str,
        value_len: usize,
    ) -> Result<(), StoreError> {
        let Some(base) = self.quota else {
            return Ok(());
        };
        if caller == DOM0 {
            return Ok(());
        }
        let quota = self.quota_overrides.get(&caller).copied().unwrap_or(base);
        if !self.take_token(caller, &quota) {
            self.note_denied(caller, path);
            return Err(StoreError::QuotaExceeded);
        }
        if quota.max_value_bytes != 0 && value_len > quota.max_value_bytes {
            self.note_denied(caller, path);
            return Err(StoreError::QuotaExceeded);
        }
        if quota.max_owned_nodes != 0 {
            let creating = self.missing_nodes(path);
            if creating > 0 && self.owned_count(caller) + creating > quota.max_owned_nodes {
                self.note_denied(caller, path);
                return Err(StoreError::QuotaExceeded);
            }
        }
        Ok(())
    }

    /// Record node-ownership changes for quota accounting (no-op without
    /// an installed quota).
    fn account_owned(&mut self, owner: DomainId, delta: i64) {
        if self.quota.is_none() || delta == 0 {
            return;
        }
        let c = self.owned_counts.entry(owner).or_insert(0);
        if delta > 0 {
            *c += delta as u64;
        } else {
            *c = c.saturating_sub((-delta) as u64);
        }
    }

    #[cold]
    fn note_denied(&mut self, caller: DomainId, path: &str) {
        *self.denied_counts.entry(caller).or_insert(0) += 1;
        self.denied_total += 1;
        trace_event!(
            self.trace_now,
            TraceEventKind::StoreDenied {
                dom: caller.0,
                path: Rc::from(path),
            }
        );
    }

    fn lookup<'a>(&'a self, path: &str) -> Option<&'a Node> {
        let mut node = &self.root;
        for s in path_segments(path) {
            node = node.children.get(s)?;
        }
        Some(node)
    }

    fn lookup_mut<'a>(&'a mut self, path: &str) -> Option<&'a mut Node> {
        let mut node = &mut self.root;
        for s in path_segments(path) {
            node = node.children.get_mut(s)?;
        }
        Some(node)
    }

    /// Read a value (owned copy; see [`XenStore::read_ref`] for the
    /// borrowing fast path).
    pub fn read<P: AsStorePath>(&self, caller: DomainId, path: P) -> Result<String, StoreError> {
        self.read_ref(caller, path).map(str::to_string)
    }

    /// Read a value without copying it: borrows straight out of the tree.
    pub fn read_ref<P: AsStorePath>(&self, caller: DomainId, path: P) -> Result<&str, StoreError> {
        let path = path.path_str();
        validate_path(path)?;
        let node = self.lookup(path).ok_or(StoreError::NotFound)?;
        if !node.perms.can_read(caller) {
            return Err(StoreError::PermissionDenied);
        }
        node.value.as_deref().ok_or(StoreError::NotFound)
    }

    /// Read a value as a shared `Rc<str>` (refcount bump, no copy).
    pub fn read_shared<P: AsStorePath>(
        &self,
        caller: DomainId,
        path: P,
    ) -> Result<Rc<str>, StoreError> {
        let path = path.path_str();
        validate_path(path)?;
        let node = self.lookup(path).ok_or(StoreError::NotFound)?;
        if !node.perms.can_read(caller) {
            return Err(StoreError::PermissionDenied);
        }
        node.value.clone().ok_or(StoreError::NotFound)
    }

    /// Walk to the node at `path`, creating missing nodes with inherited
    /// permissions. Checks write permission on the deepest pre-existing
    /// node before creating anything (seed semantics), in a single pass.
    /// Returns the node plus how many nodes were created (all of which
    /// share the inherited permissions, hence a single owner).
    fn walk_create<'a>(
        root: &'a mut Node,
        caller: DomainId,
        path: &str,
    ) -> Result<(&'a mut Node, u64), StoreError> {
        let mut node = root;
        let mut created = 0u64;
        for s in path_segments(path) {
            if created == 0 && node.children.contains_key(s) {
                node = node.children.get_mut(s).unwrap();
            } else {
                if created == 0 {
                    // First missing segment: `node` is the deepest
                    // pre-existing node — nothing has been created yet.
                    if !node.perms.can_write(caller) {
                        return Err(StoreError::PermissionDenied);
                    }
                }
                created += 1;
                let inherited = node.perms;
                node = node
                    .children
                    .entry(s.to_string())
                    .or_insert_with(|| Node::new(inherited));
            }
        }
        if created == 0 && !node.perms.can_write(caller) {
            return Err(StoreError::PermissionDenied);
        }
        Ok((node, created))
    }

    /// Write a value, creating intermediate nodes. Intermediate and leaf
    /// nodes created by the write inherit the nearest existing ancestor's
    /// permissions; writing into an existing node requires write permission
    /// on it.
    pub fn write<P: AsStorePath, V: IntoStoreValue>(
        &mut self,
        caller: DomainId,
        path: P,
        value: V,
    ) -> Result<(), StoreError> {
        let path_str = path.path_str();
        validate_path(path_str)?;
        if path_str == "/" {
            return Err(StoreError::BadPath);
        }
        if self.quota.is_some() {
            self.enforce_quota(caller, path_str, value.value_str().len())?;
        }
        let (value, created, created_owner) = {
            let (node, created) = match Self::walk_create(&mut self.root, caller, path_str) {
                Ok(hit) => hit,
                Err(e) => {
                    if matches!(e, StoreError::PermissionDenied) {
                        self.note_denied(caller, path_str);
                    }
                    return Err(e);
                }
            };
            let value = value.into_value();
            node.value = Some(Rc::clone(&value));
            (value, created, node.perms.owner)
        };
        self.account_owned(created_owner, created as i64);
        *self.write_counts.entry(caller).or_insert(0) += 1;
        self.write_total += 1;
        trace_event!(
            self.trace_now,
            TraceEventKind::StoreWrite {
                dom: caller.0,
                path: path
                    .to_shared()
                    .unwrap_or_else(|| Rc::from(path.path_str())),
                value: Rc::clone(&value),
            }
        );
        self.fire_watches(path_str, path.to_shared(), Some(value));
        Ok(())
    }

    /// Write a value only if it differs from what is already stored.
    /// Returns `Ok(true)` if the store changed (watches fired), `Ok(false)`
    /// if the identical value was already present — in which case nothing
    /// is republished and no watch event is queued. Permission checks are
    /// identical to [`XenStore::write`] either way.
    pub fn write_if_changed<P: AsStorePath, V: IntoStoreValue>(
        &mut self,
        caller: DomainId,
        path: P,
        value: V,
    ) -> Result<bool, StoreError> {
        let path_str = path.path_str();
        validate_path(path_str)?;
        if path_str == "/" {
            return Err(StoreError::BadPath);
        }
        if let Some(node) = self.lookup(path_str) {
            if !node.perms.can_write(caller) {
                self.note_denied(caller, path_str);
                return Err(StoreError::PermissionDenied);
            }
            if node.value.as_deref() == Some(value.value_str()) {
                return Ok(false);
            }
        }
        self.write(caller, path, value)?;
        Ok(true)
    }

    /// Remove a node and its subtree. Fires one watch event per removed
    /// node — the named path first, then every descendant in depth-first
    /// child order — so a watcher of a deleted subtree learns about every
    /// node that vanished, not just the root of the removal.
    pub fn remove<P: AsStorePath>(&mut self, caller: DomainId, path: P) -> Result<(), StoreError> {
        let path_str = path.path_str();
        validate_path(path_str)?;
        if path_str == "/" {
            return Err(StoreError::BadPath);
        }
        let node = self.lookup(path_str).ok_or(StoreError::NotFound)?;
        if !node.perms.can_write(caller) {
            self.note_denied(caller, path_str);
            return Err(StoreError::PermissionDenied);
        }
        let (parent_path, leaf) = path_str.rsplit_once('/').unwrap();
        let parent = if parent_path.is_empty() {
            &mut self.root
        } else {
            self.lookup_mut(parent_path).ok_or(StoreError::NotFound)?
        };
        let removed = parent.children.remove(leaf).ok_or(StoreError::NotFound)?;
        if self.quota.is_some() {
            // Removing a subtree frees its nodes from the owners' quotas.
            fn tally(node: &Node, counts: &mut BTreeMap<DomainId, u64>) {
                *counts.entry(node.perms.owner).or_insert(0) += 1;
                for child in node.children.values() {
                    tally(child, counts);
                }
            }
            let mut counts = BTreeMap::new();
            tally(&removed, &mut counts);
            for (owner, n) in counts {
                self.account_owned(owner, -(n as i64));
            }
        }
        // Event for the removed root (sharing the caller's interned path
        // when available), then one per descendant, parent-first.
        self.fire_watches(path_str, path.to_shared(), None);
        let mut buf = String::from(path_str);
        self.fire_removed_subtree(&removed, &mut buf);
        Ok(())
    }

    fn fire_removed_subtree(&mut self, node: &Node, path: &mut String) {
        for (name, child) in &node.children {
            let len = path.len();
            path.push('/');
            path.push_str(name);
            self.fire_watches(path, None, None);
            self.fire_removed_subtree(child, path);
            path.truncate(len);
        }
    }

    /// List child names of a directory node.
    pub fn list<P: AsStorePath>(
        &self,
        caller: DomainId,
        path: P,
    ) -> Result<Vec<String>, StoreError> {
        let path = path.path_str();
        validate_path(path)?;
        let node = self.lookup(path).ok_or(StoreError::NotFound)?;
        if !node.perms.can_read(caller) {
            return Err(StoreError::PermissionDenied);
        }
        Ok(node.children.keys().cloned().collect())
    }

    /// Set permissions on an existing node. Only dom0 or the current owner
    /// may change them.
    pub fn set_perms<P: AsStorePath>(
        &mut self,
        caller: DomainId,
        path: P,
        perms: Perms,
    ) -> Result<(), StoreError> {
        let path = path.path_str();
        validate_path(path)?;
        let node = self.lookup_mut(path).ok_or(StoreError::NotFound)?;
        if caller != DOM0 && caller != node.perms.owner {
            return Err(StoreError::PermissionDenied);
        }
        let old_owner = node.perms.owner;
        node.perms = perms;
        if old_owner != perms.owner {
            self.account_owned(old_owner, -1);
            self.account_owned(perms.owner, 1);
        }
        Ok(())
    }

    /// Create a directory node with explicit permissions (dom0 setup path;
    /// also allowed for a domain inside its own subtree).
    pub fn mkdir<P: AsStorePath>(
        &mut self,
        caller: DomainId,
        path: P,
        perms: Perms,
    ) -> Result<(), StoreError> {
        let path = path.path_str();
        validate_path(path)?;
        if path == "/" {
            return Err(StoreError::BadPath);
        }
        if self.quota.is_some() {
            self.enforce_quota(caller, path, 0)?;
        }
        let (created, inherited_owner, old_owner) = {
            let (node, created) = match Self::walk_create(&mut self.root, caller, path) {
                Ok(hit) => hit,
                Err(e) => {
                    if matches!(e, StoreError::PermissionDenied) {
                        self.note_denied(caller, path);
                    }
                    return Err(e);
                }
            };
            let old_owner = node.perms.owner;
            node.perms = perms;
            (created, old_owner, old_owner)
        };
        // Created nodes were charged to the inherited owner; the explicit
        // perms may hand the leaf to someone else.
        self.account_owned(inherited_owner, created as i64);
        if old_owner != perms.owner {
            self.account_owned(old_owner, -1);
            self.account_owned(perms.owner, 1);
        }
        Ok(())
    }

    /// Register a watch on a path prefix. Any write/remove at or below the
    /// prefix queues a [`WatchEvent`] for `owner`.
    pub fn watch<P: AsStorePath>(&mut self, owner: DomainId, prefix: P) -> WatchId {
        let id = WatchId(self.next_watch);
        self.next_watch += 1;
        let key: Rc<str> = prefix
            .to_shared()
            .unwrap_or_else(|| Rc::from(prefix.path_str()));
        self.watch_prefixes.insert(id.0, Rc::clone(&key));
        self.watch_index
            .entry(key)
            .or_default()
            .push(Watch { id, owner });
        self.watch_epoch += 1;
        id
    }

    /// Remove a watch.
    pub fn unwatch(&mut self, id: WatchId) -> bool {
        let Some(prefix) = self.watch_prefixes.remove(&id.0) else {
            return false;
        };
        if let Some(bucket) = self.watch_index.get_mut(&*prefix) {
            bucket.retain(|w| w.id != id);
            if bucket.is_empty() {
                self.watch_index.remove(&*prefix);
            }
        }
        self.watch_epoch += 1;
        true
    }

    /// Remove every watch registered by `owner` (a crashed control plane
    /// loses its subscriptions; recovery re-arms them fresh). Returns how
    /// many watches were removed. Events already queued are untouched —
    /// delivery-time gating is the machine's job.
    pub fn unwatch_owner(&mut self, owner: DomainId) -> usize {
        let ids: Vec<u64> = self
            .watch_index
            .values()
            .flatten()
            .filter(|w| w.owner == owner)
            .map(|w| w.id.0)
            .collect();
        for id in &ids {
            self.unwatch(WatchId(*id));
        }
        ids.len()
    }

    /// Number of registered watches.
    pub fn watch_count(&self) -> usize {
        self.watch_prefixes.len()
    }

    /// Queue events for every watch whose prefix covers `path`.
    ///
    /// Matching semantics are identical to the seed's linear scan: a watch
    /// with prefix `q` fires when `path == q`, when `q` is an ancestor of
    /// `path` (segment boundary), or when `q` is the catch-all `"/"` (or
    /// the degenerate `""`). Instead of scanning every watch, the path's
    /// ancestor prefixes are looked up directly; events are emitted in
    /// watch-registration order, exactly as the scan produced them.
    fn fire_watches(&mut self, path: &str, shared: Option<Rc<str>>, value: Option<Rc<str>>) {
        if self.watch_index.is_empty() {
            return;
        }
        let memo_valid = self.memo_epoch == self.watch_epoch
            && match (&self.memo_key, &shared) {
                (Some(k), Some(p)) => Rc::ptr_eq(k, p),
                _ => false,
            };
        if !memo_valid {
            let XenStore {
                watch_index,
                scratch_hits,
                ..
            } = self;
            scratch_hits.clear();
            {
                let mut probe = |prefix: &str| {
                    if let Some(bucket) = watch_index.get(prefix) {
                        for w in bucket {
                            scratch_hits.push((w.id.0, w.owner));
                        }
                    }
                };
                probe("");
                probe("/");
                if path != "/" {
                    let bytes = path.as_bytes();
                    for i in 1..bytes.len() {
                        if bytes[i] == b'/' {
                            probe(&path[..i]);
                        }
                    }
                    probe(path);
                }
            }
            // Registration order == ascending watch id (the seed scanned
            // its watch list in push order, which is the same order).
            self.scratch_hits.sort_unstable_by_key(|&(id, _)| id);
            // Interned paths carry a stable shared Rc — memoize the hit
            // list against it (an empty hit list is a valid memo too).
            self.memo_key = shared.as_ref().map(Rc::clone);
            self.memo_epoch = self.watch_epoch;
        }
        if self.scratch_hits.is_empty() {
            return;
        }
        let shared = shared.unwrap_or_else(|| Rc::from(path));
        for &(id, owner) in self.scratch_hits.iter() {
            self.pending.push(WatchEvent {
                watch: WatchId(id),
                owner,
                path: Rc::clone(&shared),
                value: value.clone(),
            });
        }
    }

    /// Drain queued watch events (the machine delivers them over XenBus).
    /// The recycled spare buffer (see [`XenStore::recycle_events`]) is
    /// installed in place of `pending`, so the steady-state delivery
    /// cycle reuses one allocation instead of growing a fresh `Vec` per
    /// flush.
    pub fn take_events(&mut self) -> Vec<WatchEvent> {
        std::mem::replace(&mut self.pending, std::mem::take(&mut self.spare_events))
    }

    /// Return a drained delivery buffer so its capacity is reused by the
    /// next [`XenStore::take_events`].
    pub fn recycle_events(&mut self, mut buf: Vec<WatchEvent>) {
        buf.clear();
        if buf.capacity() > self.spare_events.capacity() {
            self.spare_events = buf;
        }
    }

    /// Whether any watch events are queued.
    pub fn has_events(&self) -> bool {
        !self.pending.is_empty()
    }

    /// Begin a transaction: writes are buffered and applied atomically at
    /// commit (no isolation conflicts modelled — the paper's policies are
    /// single-writer per key).
    pub fn txn_begin(&mut self) -> TxnId {
        let id = self.next_txn;
        self.next_txn += 1;
        self.txns.insert(id, Vec::new());
        TxnId(id)
    }

    /// Buffer a write inside a transaction (permissions checked at commit).
    pub fn txn_write<P: AsStorePath, V: IntoStoreValue>(
        &mut self,
        txn: TxnId,
        caller: DomainId,
        path: P,
        value: V,
    ) -> Result<(), StoreError> {
        let buf = self
            .txns
            .get_mut(&txn.0)
            .ok_or(StoreError::BadTransaction)?;
        // Intern here so a malformed path is representable until commit
        // rejects it; StorePath::parse would eagerly reject, but the seed
        // deferred all validation to commit, so buffer the raw string.
        let path = StorePath {
            full: path
                .to_shared()
                .unwrap_or_else(|| Rc::from(path.path_str())),
        };
        buf.push((caller, path, value.into_value()));
        Ok(())
    }

    /// Validate one buffered transaction write against the current tree:
    /// the same check [`XenStore::write`] performs, with no mutation.
    ///
    /// Because created nodes inherit their parent's permissions verbatim,
    /// the deepest pre-existing node on any buffered path carries exactly
    /// the permissions the seed's clone-and-replay probe would have seen —
    /// so checking against the unmodified tree is equivalent to the seed's
    /// full-store clone, without the clone.
    fn check_txn_write(&self, caller: DomainId, path: &str) -> Result<(), StoreError> {
        validate_path(path)?;
        if path == "/" {
            return Err(StoreError::BadPath);
        }
        let mut node = &self.root;
        for s in path_segments(path) {
            match node.children.get(s) {
                Some(child) => node = child,
                None => break,
            }
        }
        if !node.perms.can_write(caller) {
            return Err(StoreError::PermissionDenied);
        }
        Ok(())
    }

    /// Commit a transaction. If any write fails its permission check the
    /// whole transaction is rolled back (the store is untouched and no
    /// watch events fire) and the error returned. A successful commit
    /// applies and publishes the writes in buffer order.
    pub fn txn_commit(&mut self, txn: TxnId) -> Result<(), StoreError> {
        let buf = self.txns.remove(&txn.0).ok_or(StoreError::BadTransaction)?;
        for (caller, path, _) in &buf {
            self.check_txn_write(*caller, path)?;
        }
        for (caller, path, value) in buf {
            self.write(caller, &path, value)?;
        }
        Ok(())
    }

    /// Abort a transaction.
    pub fn txn_abort(&mut self, txn: TxnId) -> Result<(), StoreError> {
        self.txns.remove(&txn.0).ok_or(StoreError::BadTransaction)?;
        Ok(())
    }

    /// Writes performed by a domain — input for the anomaly detector
    /// ("IOrchestra can be configured to identify malicious VMs").
    /// Suppressed [`XenStore::write_if_changed`] republishes do not count:
    /// they put no traffic on the channel.
    pub fn write_count(&self, dom: DomainId) -> u64 {
        self.write_counts.get(&dom).copied().unwrap_or(0)
    }

    /// Denied write-type operations by a domain (permission violations) —
    /// the anomaly detector's misbehaving-writer signal.
    pub fn denied_count(&self, dom: DomainId) -> u64 {
        self.denied_counts.get(&dom).copied().unwrap_or(0)
    }

    /// Writes performed by all domains together. Monotonic; equal totals
    /// across two observations prove no per-domain [`write_count`] moved,
    /// letting per-tick scans short-circuit without touching the map.
    ///
    /// [`write_count`]: XenStore::write_count
    pub fn write_total(&self) -> u64 {
        self.write_total
    }

    /// Denied write-type operations across all domains (monotonic; see
    /// [`XenStore::write_total`] for the change-detection contract).
    pub fn denied_total(&self) -> u64 {
        self.denied_total
    }

    /// Conventional per-domain subtree root, as in Xen.
    pub fn domain_path(dom: DomainId) -> String {
        format!("/local/domain/{}", dom.0)
    }

    /// Flatten the tree into `(path, value, perms)` rows, depth-first in
    /// child order. Used by tests to compare whole-store state (e.g. that
    /// a failed transaction left the tree byte-identical) and by the
    /// differential suite against the legacy implementation.
    pub fn dump(&self) -> Vec<(String, Option<String>, Perms)> {
        let mut out = Vec::new();
        fn visit(node: &Node, path: &mut String, out: &mut Vec<(String, Option<String>, Perms)>) {
            for (name, child) in &node.children {
                let len = path.len();
                path.push('/');
                path.push_str(name);
                out.push((
                    path.clone(),
                    child.value.as_deref().map(str::to_string),
                    child.perms,
                ));
                visit(child, path, out);
                path.truncate(len);
            }
        }
        visit(&self.root, &mut String::new(), &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(n: u32) -> DomainId {
        DomainId(n)
    }

    fn store_with_domain(dom: DomainId) -> XenStore {
        let mut s = XenStore::new();
        let path = XenStore::domain_path(dom);
        s.mkdir(DOM0, &path, Perms::private_to(dom)).unwrap();
        s
    }

    #[test]
    fn write_read_roundtrip() {
        let mut s = store_with_domain(d(1));
        s.write(d(1), "/local/domain/1/virt-dev/flush_now", "1")
            .unwrap();
        assert_eq!(
            s.read(d(1), "/local/domain/1/virt-dev/flush_now").unwrap(),
            "1"
        );
    }

    #[test]
    fn dom0_reads_everything() {
        let mut s = store_with_domain(d(1));
        s.write(d(1), "/local/domain/1/secret", "42").unwrap();
        assert_eq!(s.read(DOM0, "/local/domain/1/secret").unwrap(), "42");
    }

    #[test]
    fn cross_domain_access_denied() {
        let mut s = store_with_domain(d(1));
        s.mkdir(DOM0, "/local/domain/2", Perms::private_to(d(2)))
            .unwrap();
        s.write(d(1), "/local/domain/1/nr", "100").unwrap();
        // Domain 2 can neither read nor write domain 1's subtree.
        assert_eq!(
            s.read(d(2), "/local/domain/1/nr"),
            Err(StoreError::PermissionDenied)
        );
        assert_eq!(
            s.write(d(2), "/local/domain/1/nr", "0"),
            Err(StoreError::PermissionDenied)
        );
        // And cannot create nodes there either.
        assert_eq!(
            s.write(d(2), "/local/domain/1/evil", "x"),
            Err(StoreError::PermissionDenied)
        );
    }

    #[test]
    fn created_nodes_inherit_perms() {
        let mut s = store_with_domain(d(1));
        s.write(d(1), "/local/domain/1/a/b/c", "v").unwrap();
        // The intermediate nodes are private to domain 1.
        assert_eq!(
            s.read(d(2), "/local/domain/1/a/b/c"),
            Err(StoreError::PermissionDenied)
        );
        assert_eq!(s.read(d(1), "/local/domain/1/a/b/c").unwrap(), "v");
    }

    #[test]
    fn missing_path_not_found() {
        let s = XenStore::new();
        assert_eq!(s.read(DOM0, "/nope"), Err(StoreError::NotFound));
    }

    #[test]
    fn bad_paths_rejected() {
        let mut s = XenStore::new();
        assert_eq!(s.write(DOM0, "relative", "x"), Err(StoreError::BadPath));
        assert_eq!(s.write(DOM0, "//double", "x"), Err(StoreError::BadPath));
        assert_eq!(s.write(DOM0, "/", "x"), Err(StoreError::BadPath));
        assert_eq!(s.write(DOM0, "/trailing/", "x"), Err(StoreError::BadPath));
        assert_eq!(s.write(DOM0, "/mid//dle", "x"), Err(StoreError::BadPath));
    }

    #[test]
    fn store_path_parse_matches_string_validation() {
        assert!(StorePath::parse("/a/b").is_ok());
        assert_eq!(StorePath::parse("/a/b").unwrap().as_str(), "/a/b");
        assert!(StorePath::parse("/").is_ok());
        assert_eq!(StorePath::parse("rel"), Err(StoreError::BadPath));
        assert_eq!(StorePath::parse("//x"), Err(StoreError::BadPath));
        assert_eq!(StorePath::parse("/x/"), Err(StoreError::BadPath));
        let p = StorePath::parse("/a/b/c").unwrap();
        assert_eq!(p.segments().collect::<Vec<_>>(), vec!["a", "b", "c"]);
        assert_eq!(
            StorePath::parse("/").unwrap().segments().count(),
            0,
            "root has no segments"
        );
    }

    #[test]
    fn interned_path_roundtrip_and_shared_event_payload() {
        let mut s = store_with_domain(d(1));
        let key = StorePath::parse("/local/domain/1/virt-dev/nr").unwrap();
        s.watch(DOM0, "/local/domain/1");
        s.write(d(1), &key, "7").unwrap();
        assert_eq!(s.read_ref(d(1), &key).unwrap(), "7");
        let evs = s.take_events();
        assert_eq!(evs.len(), 1);
        // The event shares the interned path allocation.
        assert!(Rc::ptr_eq(&evs[0].path, &key.shared()));
    }

    #[test]
    fn read_ref_borrows_without_copy() {
        let mut s = store_with_domain(d(1));
        s.write(d(1), "/local/domain/1/x", "hello").unwrap();
        assert_eq!(s.read_ref(d(1), "/local/domain/1/x").unwrap(), "hello");
        assert_eq!(
            s.read_ref(d(2), "/local/domain/1/x"),
            Err(StoreError::PermissionDenied)
        );
        assert_eq!(s.read_ref(DOM0, "/nope"), Err(StoreError::NotFound));
        let shared = s.read_shared(d(1), "/local/domain/1/x").unwrap();
        assert_eq!(&*shared, "hello");
    }

    #[test]
    fn write_if_changed_suppresses_republish() {
        let mut s = store_with_domain(d(1));
        s.watch(DOM0, "/local");
        assert!(s.write_if_changed(d(1), "/local/domain/1/nr", "5").unwrap());
        assert_eq!(s.take_events().len(), 1);
        assert_eq!(s.write_count(d(1)), 1);
        // Identical value: no event, no write counted.
        assert!(!s.write_if_changed(d(1), "/local/domain/1/nr", "5").unwrap());
        assert!(s.take_events().is_empty());
        assert_eq!(s.write_count(d(1)), 1);
        // Changed value publishes again.
        assert!(s.write_if_changed(d(1), "/local/domain/1/nr", "6").unwrap());
        assert_eq!(s.take_events().len(), 1);
        assert_eq!(s.read_ref(d(1), "/local/domain/1/nr").unwrap(), "6");
        // Permission checks still apply even when the value matches.
        assert_eq!(
            s.write_if_changed(d(2), "/local/domain/1/nr", "6"),
            Err(StoreError::PermissionDenied)
        );
    }

    #[test]
    fn remove_subtree() {
        let mut s = store_with_domain(d(1));
        s.write(d(1), "/local/domain/1/a/b", "v").unwrap();
        s.remove(d(1), "/local/domain/1/a").unwrap();
        assert_eq!(
            s.read(d(1), "/local/domain/1/a/b"),
            Err(StoreError::NotFound)
        );
    }

    #[test]
    fn remove_fires_event_per_deleted_node() {
        let mut s = store_with_domain(d(1));
        s.write(d(1), "/local/domain/1/virt-dev/weight/0", "0.5")
            .unwrap();
        s.write(d(1), "/local/domain/1/virt-dev/weight/1", "0.5")
            .unwrap();
        s.take_events();
        // The guest watches its own weight subtree; deleting the parent
        // must tell it about every vanished node.
        s.watch(d(1), "/local/domain/1/virt-dev/weight");
        s.remove(DOM0, "/local/domain/1/virt-dev").unwrap();
        let evs = s.take_events();
        let paths: Vec<&str> = evs.iter().map(|e| &*e.path).collect();
        assert_eq!(
            paths,
            vec![
                "/local/domain/1/virt-dev/weight",
                "/local/domain/1/virt-dev/weight/0",
                "/local/domain/1/virt-dev/weight/1",
            ],
            "parent-first, then descendants in child order; the removed \
             root itself is outside the watch prefix"
        );
        assert!(evs.iter().all(|e| e.value.is_none()));
    }

    #[test]
    fn list_children() {
        let mut s = store_with_domain(d(1));
        s.write(d(1), "/local/domain/1/x", "1").unwrap();
        s.write(d(1), "/local/domain/1/y", "2").unwrap();
        let kids = s.list(d(1), "/local/domain/1").unwrap();
        assert_eq!(kids, vec!["x".to_string(), "y".to_string()]);
    }

    #[test]
    fn watch_fires_on_subtree_write() {
        let mut s = store_with_domain(d(1));
        let w = s.watch(DOM0, "/local/domain/1");
        s.write(d(1), "/local/domain/1/has_dirty_pages", "1")
            .unwrap();
        let evs = s.take_events();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].watch, w);
        assert_eq!(evs[0].owner, DOM0);
        assert_eq!(&*evs[0].path, "/local/domain/1/has_dirty_pages");
        assert_eq!(evs[0].value.as_deref(), Some("1"));
        // Drained.
        assert!(s.take_events().is_empty());
    }

    #[test]
    fn watch_prefix_must_match_segment_boundary() {
        let mut s = XenStore::new();
        s.watch(DOM0, "/a/b");
        s.write(DOM0, "/a/bc", "x").unwrap();
        assert!(s.take_events().is_empty(), "no boundary-crossing matches");
        s.write(DOM0, "/a/b", "x").unwrap();
        assert_eq!(s.take_events().len(), 1);
        s.write(DOM0, "/a/b/c", "x").unwrap();
        assert_eq!(s.take_events().len(), 1);
    }

    #[test]
    fn root_watch_catches_everything() {
        let mut s = XenStore::new();
        s.watch(DOM0, "/");
        s.write(DOM0, "/a", "1").unwrap();
        s.write(DOM0, "/deep/ly/nested/key", "2").unwrap();
        assert_eq!(s.take_events().len(), 2);
    }

    #[test]
    fn watch_fires_on_remove() {
        let mut s = XenStore::new();
        s.write(DOM0, "/a/b", "x").unwrap();
        s.take_events();
        s.watch(d(3), "/a");
        s.remove(DOM0, "/a/b").unwrap();
        let evs = s.take_events();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].owner, d(3));
        assert!(evs[0].value.is_none());
    }

    #[test]
    fn unwatch_stops_events() {
        let mut s = XenStore::new();
        let w = s.watch(DOM0, "/a");
        assert_eq!(s.watch_count(), 1);
        assert!(s.unwatch(w));
        assert!(!s.unwatch(w));
        assert_eq!(s.watch_count(), 0);
        s.write(DOM0, "/a/b", "x").unwrap();
        assert!(s.take_events().is_empty());
    }

    #[test]
    fn multiple_watches_fire_independently() {
        let mut s = XenStore::new();
        s.watch(d(1), "/shared");
        s.watch(d(2), "/shared");
        s.write(DOM0, "/shared/v", "7").unwrap();
        let evs = s.take_events();
        assert_eq!(evs.len(), 2);
        let owners: Vec<DomainId> = evs.iter().map(|e| e.owner).collect();
        assert!(owners.contains(&d(1)) && owners.contains(&d(2)));
    }

    #[test]
    fn events_preserve_registration_order_across_prefixes() {
        // Watches at different depths (thus different index buckets) must
        // still fire in registration order, as the seed's scan did.
        let mut s = XenStore::new();
        let w_deep = s.watch(d(2), "/a/b");
        let w_root = s.watch(d(1), "/");
        let w_mid = s.watch(d(3), "/a");
        s.write(DOM0, "/a/b/c", "x").unwrap();
        let ids: Vec<WatchId> = s.take_events().iter().map(|e| e.watch).collect();
        assert_eq!(ids, vec![w_deep, w_root, w_mid]);
    }

    #[test]
    fn transaction_commit_applies_all() {
        let mut s = store_with_domain(d(1));
        let t = s.txn_begin();
        s.txn_write(t, d(1), "/local/domain/1/a", "1").unwrap();
        s.txn_write(t, d(1), "/local/domain/1/b", "2").unwrap();
        s.txn_commit(t).unwrap();
        assert_eq!(s.read(d(1), "/local/domain/1/a").unwrap(), "1");
        assert_eq!(s.read(d(1), "/local/domain/1/b").unwrap(), "2");
    }

    #[test]
    fn transaction_rolls_back_on_denied_write() {
        let mut s = store_with_domain(d(1));
        s.mkdir(DOM0, "/local/domain/2", Perms::private_to(d(2)))
            .unwrap();
        let t = s.txn_begin();
        s.txn_write(t, d(1), "/local/domain/1/ok", "1").unwrap();
        s.txn_write(t, d(1), "/local/domain/2/evil", "1").unwrap();
        assert_eq!(s.txn_commit(t), Err(StoreError::PermissionDenied));
        // Nothing applied.
        assert_eq!(
            s.read(d(1), "/local/domain/1/ok"),
            Err(StoreError::NotFound)
        );
    }

    #[test]
    fn transaction_abort_discards() {
        let mut s = store_with_domain(d(1));
        let t = s.txn_begin();
        s.txn_write(t, d(1), "/local/domain/1/a", "1").unwrap();
        s.txn_abort(t).unwrap();
        assert_eq!(s.read(d(1), "/local/domain/1/a"), Err(StoreError::NotFound));
        assert_eq!(s.txn_commit(t), Err(StoreError::BadTransaction));
    }

    #[test]
    fn transaction_dependent_writes_commit() {
        // A later txn write below a node created by an earlier one: the
        // walk-based validation must accept it, as the clone-probe did.
        let mut s = store_with_domain(d(1));
        let t = s.txn_begin();
        s.txn_write(t, d(1), "/local/domain/1/a", "1").unwrap();
        s.txn_write(t, d(1), "/local/domain/1/a/b/c", "2").unwrap();
        s.txn_commit(t).unwrap();
        assert_eq!(s.read(d(1), "/local/domain/1/a/b/c").unwrap(), "2");
    }

    #[test]
    fn write_counts_tracked_per_domain() {
        let mut s = store_with_domain(d(1));
        for _ in 0..5 {
            s.write(d(1), "/local/domain/1/x", "v").unwrap();
        }
        assert_eq!(s.write_count(d(1)), 5);
        assert_eq!(s.write_count(d(9)), 0);
    }

    #[test]
    fn denied_counts_tracked_per_domain() {
        let mut s = store_with_domain(d(1));
        s.write(d(1), "/local/domain/1/x", "v").unwrap();
        // Dom 2 violating dom 1's subtree is denied and counted, through
        // every write-type entry point.
        assert_eq!(
            s.write(d(2), "/local/domain/1/x", "evil"),
            Err(StoreError::PermissionDenied)
        );
        assert_eq!(
            s.write_if_changed(d(2), "/local/domain/1/x", "evil"),
            Err(StoreError::PermissionDenied)
        );
        assert_eq!(
            s.remove(d(2), "/local/domain/1/x"),
            Err(StoreError::PermissionDenied)
        );
        assert_eq!(
            s.mkdir(d(2), "/local/domain/1/sub", Perms::private_to(d(2))),
            Err(StoreError::PermissionDenied)
        );
        assert_eq!(s.denied_count(d(2)), 4);
        // The victim's counters are untouched, and so is its data.
        assert_eq!(s.denied_count(d(1)), 0);
        assert_eq!(s.write_count(d(2)), 0);
        assert_eq!(s.read(d(1), "/local/domain/1/x").unwrap(), "v");
    }

    #[test]
    fn set_perms_owner_only() {
        let mut s = store_with_domain(d(1));
        s.write(d(1), "/local/domain/1/x", "v").unwrap();
        let open = Perms {
            owner: d(1),
            others_read: true,
            others_write: false,
        };
        assert_eq!(
            s.set_perms(d(2), "/local/domain/1/x", open),
            Err(StoreError::PermissionDenied)
        );
        s.set_perms(d(1), "/local/domain/1/x", open).unwrap();
        assert_eq!(s.read(d(2), "/local/domain/1/x").unwrap(), "v");
    }

    #[test]
    fn unwatch_owner_removes_only_that_owners_watches() {
        let mut s = XenStore::new();
        s.watch(DOM0, "/a");
        s.watch(DOM0, "/b");
        let survivor = s.watch(d(1), "/a");
        assert_eq!(s.unwatch_owner(DOM0), 2);
        assert_eq!(s.watch_count(), 1);
        s.write(DOM0, "/a/x", "1").unwrap();
        s.write(DOM0, "/b/x", "1").unwrap();
        let evs = s.take_events();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].watch, survivor);
        assert_eq!(s.unwatch_owner(DOM0), 0);
    }

    fn quota_store(quota: StoreQuota) -> XenStore {
        let mut s = XenStore::new();
        s.set_quota(quota);
        let path = XenStore::domain_path(d(1));
        s.mkdir(DOM0, &path, Perms::private_to(d(1))).unwrap();
        s
    }

    #[test]
    fn quotas_are_off_by_default() {
        // A bare store never rate-limits, whatever the (absent) clock says:
        // the differential oracle and hot-path bench rely on this.
        let mut s = store_with_domain(d(1));
        for i in 0..10_000u32 {
            s.write(d(1), "/local/domain/1/x", i.to_string()).unwrap();
        }
        assert_eq!(s.owned_count(d(1)), 0, "no accounting without a quota");
    }

    #[test]
    fn value_size_quota_is_enforced() {
        let mut s = quota_store(StoreQuota {
            max_owned_nodes: 0,
            max_value_bytes: 8,
            write_rate_per_sec: 0,
            write_burst: 0,
        });
        s.write(d(1), "/local/domain/1/ok", "12345678").unwrap();
        assert_eq!(
            s.write(d(1), "/local/domain/1/big", "123456789"),
            Err(StoreError::QuotaExceeded)
        );
        assert_eq!(s.denied_count(d(1)), 1, "quota trips feed denied counts");
        // Dom0 is exempt.
        s.write(DOM0, "/local/domain/1/big", "x".repeat(64))
            .unwrap();
    }

    #[test]
    fn owned_node_quota_counts_creates_and_removes() {
        let mut s = quota_store(StoreQuota {
            max_owned_nodes: 5,
            max_value_bytes: 0,
            write_rate_per_sec: 0,
            write_burst: 0,
        });
        // Only the domain root itself transfers to the guest; the
        // intermediate /local and /local/domain nodes stay dom0's.
        assert_eq!(s.owned_count(d(1)), 1);
        assert_eq!(s.owned_count(DOM0), 2);
        s.write(d(1), "/local/domain/1/a", "1").unwrap();
        s.write(d(1), "/local/domain/1/b", "2").unwrap();
        s.write(d(1), "/local/domain/1/c", "3").unwrap();
        s.write(d(1), "/local/domain/1/e", "4").unwrap();
        assert_eq!(s.owned_count(d(1)), 5);
        assert_eq!(
            s.write(d(1), "/local/domain/1/f", "5"),
            Err(StoreError::QuotaExceeded)
        );
        // Rewriting an existing node creates nothing and still works.
        s.write(d(1), "/local/domain/1/a", "1'").unwrap();
        // Removing frees quota.
        s.remove(d(1), "/local/domain/1/b").unwrap();
        assert_eq!(s.owned_count(d(1)), 4);
        s.write(d(1), "/local/domain/1/f", "5").unwrap();
        // A multi-node create is charged atomically up front.
        assert_eq!(
            s.write(d(1), "/local/domain/1/deep/chain", "x"),
            Err(StoreError::QuotaExceeded)
        );
        assert_eq!(s.owned_count(d(1)), 5, "failed create leaves no debris");
    }

    #[test]
    fn write_rate_quota_throttles_and_refills() {
        let mut s = quota_store(StoreQuota {
            max_owned_nodes: 0,
            max_value_bytes: 0,
            write_rate_per_sec: 10,
            write_burst: 4,
        });
        s.set_now(SimTime::from_millis(1));
        for _ in 0..4 {
            s.write(d(1), "/local/domain/1/x", "v").unwrap();
        }
        assert_eq!(
            s.write(d(1), "/local/domain/1/x", "v"),
            Err(StoreError::QuotaExceeded),
            "burst exhausted"
        );
        // 100 ms at 10/s refills exactly one token.
        s.set_now(SimTime::from_millis(101));
        s.write(d(1), "/local/domain/1/x", "v").unwrap();
        assert_eq!(
            s.write(d(1), "/local/domain/1/x", "v"),
            Err(StoreError::QuotaExceeded)
        );
        // A long idle stretch caps at the burst, not unbounded credit.
        s.set_now(SimTime::from_secs(100));
        for _ in 0..4 {
            s.write(d(1), "/local/domain/1/x", "v").unwrap();
        }
        assert_eq!(
            s.write(d(1), "/local/domain/1/x", "v"),
            Err(StoreError::QuotaExceeded)
        );
        // Dom0 never throttles.
        for _ in 0..100 {
            s.write(DOM0, "/local/domain/1/x", "v").unwrap();
        }
    }

    #[test]
    fn suppressed_republish_is_not_rate_charged() {
        let mut s = quota_store(StoreQuota {
            max_owned_nodes: 0,
            max_value_bytes: 0,
            write_rate_per_sec: 10,
            write_burst: 2,
        });
        s.write(d(1), "/local/domain/1/x", "v").unwrap();
        // Identical-value republishes put no traffic on the channel and
        // cost no tokens.
        for _ in 0..50 {
            assert!(!s.write_if_changed(d(1), "/local/domain/1/x", "v").unwrap());
        }
        s.write(d(1), "/local/domain/1/x", "w").unwrap();
        assert_eq!(
            s.write(d(1), "/local/domain/1/x", "z"),
            Err(StoreError::QuotaExceeded)
        );
    }

    #[test]
    fn dump_flattens_depth_first() {
        let mut s = XenStore::new();
        s.write(DOM0, "/b", "2").unwrap();
        s.write(DOM0, "/a/x", "1").unwrap();
        let rows: Vec<(String, Option<String>)> =
            s.dump().into_iter().map(|(p, v, _)| (p, v)).collect();
        assert_eq!(
            rows,
            vec![
                ("/a".to_string(), None),
                ("/a/x".to_string(), Some("1".to_string())),
                ("/b".to_string(), Some("2".to_string())),
            ]
        );
    }
}
