//! Installing a [`FaultPlan`] across the machine's layers.
//!
//! The plan itself (`iorch_simcore::faults`) is pure data; this module is
//! the side-effectful half that arms it on a concrete [`Machine`]:
//!
//! * device slowdown/stall windows → cloned into the
//!   [`StorageSubsystem`](iorch_storage::StorageSubsystem), which consults
//!   them at dispatch time;
//! * watch-event delay → cloned into the machine, which adds it to the
//!   XenBus delivery latency;
//! * guest misbehaviour (`IgnoreFlushNow`, `IgnoreReleaseRequest`) →
//!   [`Misbehavior`] flags toggled on the guest kernel at the window edges;
//! * store traffic faults (`StoreHammer`, `StoreViolation`) → periodic
//!   store writes scheduled on the simulation clock, issued *as the faulty
//!   domain* so permission checks, write accounting and watch delivery all
//!   see exactly what a real misbehaving guest would produce.
//!
//! Everything is scheduled up front from the plan, so a `(seed, plan)` pair
//! replays bit-for-bit.

use iorch_guestos::Misbehavior;
use iorch_simcore::{FaultKind, FaultPlan, SimTime};

use crate::domain::DomainId;
use crate::machine::{Cluster, Sched};
use crate::xenstore::XenStore;

/// Set one misbehaviour flag on a guest kernel (no-op if the domain is
/// gone).
fn set_flag(
    cl: &mut Cluster,
    idx: usize,
    dom: DomainId,
    on: bool,
    apply: impl Fn(&mut Misbehavior, bool),
) {
    if let Some(kernel) = cl.machines[idx].kernel_mut(dom) {
        let mut m = kernel.misbehavior();
        apply(&mut m, on);
        kernel.set_misbehavior(m);
    }
}

impl Cluster {
    /// Arm `plan` on machine `idx`: storage and watch-delay hooks are
    /// installed immediately, guest misbehaviour toggles and store-traffic
    /// writers are scheduled at their window edges. Install *after* the
    /// involved domains exist; a fault naming a destroyed domain degrades
    /// to a no-op.
    pub fn install_faults(&mut self, s: &mut Sched, idx: usize, plan: FaultPlan) {
        if plan.has_device_faults() {
            self.machines[idx].storage.install_faults(plan.clone());
        }
        if plan.has_watch_faults() || plan.has_bus_faults() {
            self.machines[idx].set_fault_plan(Some(plan.clone()));
        }
        for ev in plan.events() {
            let (from, until) = (ev.window.from, ev.window.until);
            match ev.kind {
                FaultKind::DeviceSlowdown { .. }
                | FaultKind::DeviceStall
                | FaultKind::WatchDelay { .. }
                // Consulted by the machine at delivery time via the
                // installed plan; nothing to schedule.
                | FaultKind::BusUnreliable { .. } => {}
                // Cluster-scope faults: armed by the cluster control tier
                // (`iorchestra::cluster`) on its message bus and node
                // lifecycle, not by a single machine.
                FaultKind::NetPartition { .. }
                | FaultKind::NetUnreliable { .. }
                | FaultKind::NetDelay { .. }
                | FaultKind::NodeCrash { .. }
                | FaultKind::ControllerCrash { .. } => {}
                FaultKind::PlaneCrash { at, recover_after } => {
                    s.schedule_at(at, move |cl: &mut Cluster, s| {
                        Cluster::crash_control(cl, s, idx);
                    });
                    s.schedule_at(at + recover_after, move |cl: &mut Cluster, s| {
                        Cluster::recover_control(cl, s, idx);
                    });
                }
                FaultKind::IgnoreFlushNow { dom } => {
                    let dom = DomainId(dom);
                    s.schedule_at(from, move |cl: &mut Cluster, _s| {
                        set_flag(cl, idx, dom, true, |m, on| m.ignore_flush_now = on);
                    });
                    if until < SimTime::MAX {
                        s.schedule_at(until, move |cl: &mut Cluster, _s| {
                            set_flag(cl, idx, dom, false, |m, on| m.ignore_flush_now = on);
                        });
                    }
                }
                FaultKind::IgnoreReleaseRequest { dom } => {
                    let dom = DomainId(dom);
                    s.schedule_at(from, move |cl: &mut Cluster, _s| {
                        set_flag(cl, idx, dom, true, |m, on| m.ignore_release_request = on);
                    });
                    if until < SimTime::MAX {
                        s.schedule_at(until, move |cl: &mut Cluster, _s| {
                            set_flag(cl, idx, dom, false, |m, on| m.ignore_release_request = on);
                        });
                    }
                }
                FaultKind::StoreHammer { dom, period } => {
                    let dom = DomainId(dom);
                    let path = format!("{}/junk", XenStore::domain_path(dom));
                    s.schedule_at(from, move |cl: &mut Cluster, s| {
                        set_flag(cl, idx, dom, true, |m, on| m.hammer_store = on);
                        let path = path.clone();
                        let mut n: u64 = 0;
                        s.schedule_every(period, move |cl: &mut Cluster, s| {
                            if s.now() >= until {
                                set_flag(cl, idx, dom, false, |m, on| m.hammer_store = on);
                                return false;
                            }
                            if cl.machines[idx].domain(dom).is_none() {
                                return false;
                            }
                            n += 1;
                            let value = n.to_string();
                            cl.cp_action(s, idx, |m, _s| {
                                let _ = m.store.write(dom, &path, value.as_str());
                            });
                            true
                        });
                    });
                }
                FaultKind::StoreViolation {
                    dom,
                    victim,
                    period,
                } => {
                    let dom = DomainId(dom);
                    let victim = DomainId(victim);
                    let path = format!("{}/virt-dev/flush_now", XenStore::domain_path(victim));
                    s.schedule_at(from, move |_cl: &mut Cluster, s| {
                        let path = path.clone();
                        s.schedule_every(period, move |cl: &mut Cluster, s| {
                            if s.now() >= until || cl.machines[idx].domain(dom).is_none() {
                                return false;
                            }
                            // Denied by the store's permission model; the
                            // denial is what the anomaly detector feeds on.
                            cl.cp_action(s, idx, |m, _s| {
                                let _ = m.store.write(dom, &path, "31337");
                            });
                            true
                        });
                    });
                }
            }
        }
    }
}
