//! CPU time accounting.
//!
//! Tracks busy time per core — guest VCPU work, paravirt backend work on
//! shared cores, and dedicated I/O cores (which *spin*, so they count as
//! 100% busy from reservation onward: exactly the effect behind the
//! paper's Fig. 10c utilization comparison).

use iorch_simcore::{SimDuration, SimTime};

use crate::numa::CoreId;

#[derive(Clone, Copy, Debug, Default)]
struct CoreAccount {
    busy: SimDuration,
    spinning_since: Option<SimTime>,
}

/// Per-core busy-time ledger.
#[derive(Clone, Debug)]
pub struct CpuAccounting {
    cores: Vec<CoreAccount>,
    started: SimTime,
}

impl CpuAccounting {
    /// Ledger for `n` cores starting at `start`.
    pub fn new(n: usize, start: SimTime) -> Self {
        CpuAccounting {
            cores: vec![CoreAccount::default(); n],
            started: start,
        }
    }

    /// Record `span` of real work on a core.
    pub fn record_busy(&mut self, core: CoreId, span: SimDuration) {
        self.cores[core.0].busy += span;
    }

    /// Mark a core as a spinning (polling) I/O core from `now` onward.
    pub fn start_spinning(&mut self, core: CoreId, now: SimTime) {
        self.cores[core.0].spinning_since.get_or_insert(now);
    }

    /// Stop spinning (core released).
    pub fn stop_spinning(&mut self, core: CoreId, now: SimTime) {
        if let Some(since) = self.cores[core.0].spinning_since.take() {
            self.cores[core.0].busy += now.saturating_since(since);
        }
    }

    /// Busy time of one core up to `now`.
    pub fn core_busy(&self, core: CoreId, now: SimTime) -> SimDuration {
        let c = &self.cores[core.0];
        let spin = c
            .spinning_since
            .map(|s| now.saturating_since(s))
            .unwrap_or(SimDuration::ZERO);
        c.busy + spin
    }

    /// Machine-wide utilization in `[0, 1]` up to `now`. A spinning I/O
    /// core contributes 100% for its spinning period.
    pub fn utilization(&self, now: SimTime) -> f64 {
        let elapsed = now.saturating_since(self.started).as_secs_f64();
        if elapsed <= 0.0 || self.cores.is_empty() {
            return 0.0;
        }
        let busy: f64 = (0..self.cores.len())
            .map(|i| (self.core_busy(CoreId(i), now).as_secs_f64() / elapsed).min(1.0))
            .sum();
        busy / self.cores.len() as f64
    }

    /// Number of cores tracked.
    pub fn core_count(&self) -> usize {
        self.cores.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn busy_accumulates() {
        let mut cpu = CpuAccounting::new(2, t(0));
        cpu.record_busy(CoreId(0), SimDuration::from_millis(50));
        cpu.record_busy(CoreId(0), SimDuration::from_millis(25));
        assert_eq!(
            cpu.core_busy(CoreId(0), t(100)),
            SimDuration::from_millis(75)
        );
        assert_eq!(cpu.core_busy(CoreId(1), t(100)), SimDuration::ZERO);
        // (0.75 + 0) / 2 cores
        assert!((cpu.utilization(t(100)) - 0.375).abs() < 1e-9);
    }

    #[test]
    fn spinning_counts_fully() {
        let mut cpu = CpuAccounting::new(2, t(0));
        cpu.start_spinning(CoreId(1), t(0));
        assert!((cpu.utilization(t(100)) - 0.5).abs() < 1e-9);
        cpu.stop_spinning(CoreId(1), t(50));
        // 50ms of spin over 100ms on one of two cores = 0.25.
        assert!((cpu.utilization(t(100)) - 0.25).abs() < 1e-9);
    }

    #[test]
    fn double_start_spin_is_idempotent() {
        let mut cpu = CpuAccounting::new(1, t(0));
        cpu.start_spinning(CoreId(0), t(0));
        cpu.start_spinning(CoreId(0), t(50));
        assert!((cpu.utilization(t(100)) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn utilization_capped_at_one() {
        let mut cpu = CpuAccounting::new(1, t(0));
        // Record more busy time than wall time (overlapping VCPUs).
        cpu.record_busy(CoreId(0), SimDuration::from_millis(500));
        assert!(cpu.utilization(t(100)) <= 1.0);
    }

    #[test]
    fn zero_elapsed() {
        let cpu = CpuAccounting::new(4, t(5));
        assert_eq!(cpu.utilization(t(5)), 0.0);
    }
}
