//! # iorch-hypervisor — the Xen-like machine model
//!
//! The host-side half of the semantic gap, and the substrate IOrchestra's
//! policies plug into:
//!
//! * [`XenStore`] — the shared system store: hierarchical keys, per-domain
//!   permissions, watches (publish–subscribe) and transactions (paper §4);
//! * [`Ring`] — frontend/backend request rings with doorbell batching;
//! * [`IoCore`] — dedicated polling I/O cores running Algorithm 3's
//!   deficit round-robin over per-VM buffers, with NUMA-aware copy costs;
//! * [`NumaTopology`] / [`CpuAccounting`] — 2-socket testbed topology,
//!   VCPU placement and utilization accounting;
//! * [`Machine`] / [`Cluster`] — the composed host(s): guests, storage,
//!   store and I/O paths driven by one deterministic event loop;
//! * [`ControlPlane`] — the hook trait the `iorchestra` crate implements
//!   (Baseline / SDC / DIF / IOrchestra are all control planes).

#![warn(missing_docs)]

mod cpu;
mod domain;
mod faults;
mod iocore;
mod machine;
mod numa;
mod ring;
mod xenstore;
pub mod xenstore_legacy;

pub use cpu::CpuAccounting;
pub use domain::{DomainId, VmSpec};
pub use iocore::{IoCore, IoCoreParams};
pub use machine::{
    Cluster, ControlPlane, CpuWaiter, Domain, IoPathMode, Machine, MachineConfig, OpResult,
    OpWaiter, PlacementCaps, Sched, VirtTiming,
};
pub use numa::{CoreId, NumaTopology, PlacementPolicy};
pub use ring::{Ring, RingPush};
pub use xenstore::{
    AsStorePath, IntoStoreValue, Perms, StoreError, StorePath, StoreQuota, TxnId, WatchEvent,
    WatchId, XenStore, DOM0,
};
