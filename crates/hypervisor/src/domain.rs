//! Domain (VM) identity and static configuration.

/// Identifies a domain on one physical machine. `DomainId(0)` is dom0 —
/// the control domain / hypervisor side of the system store.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct DomainId(pub u32);

impl DomainId {
    /// Is this the control domain?
    pub fn is_dom0(self) -> bool {
        self.0 == 0
    }
}

/// Static VM sizing, as varied throughout the paper's experiments
/// (e.g. "each VM has two VCPUs and 4 GB memory").
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct VmSpec {
    /// Number of virtual CPUs.
    pub vcpus: u32,
    /// Guest memory in bytes.
    pub mem_bytes: u64,
    /// Virtual disk size in bytes.
    pub vdisk_bytes: u64,
}

impl VmSpec {
    /// `vcpus` VCPUs and `mem_gb` GiB of memory, with a default 40 GiB disk.
    pub fn new(vcpus: u32, mem_gb: u64) -> Self {
        assert!(vcpus >= 1);
        VmSpec {
            vcpus,
            mem_bytes: mem_gb << 30,
            vdisk_bytes: 40 << 30,
        }
    }

    /// Override the virtual disk size.
    pub fn with_disk_gb(mut self, gb: u64) -> Self {
        self.vdisk_bytes = gb << 30;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dom0_detection() {
        assert!(DomainId(0).is_dom0());
        assert!(!DomainId(1).is_dom0());
    }

    #[test]
    fn spec_builders() {
        let s = VmSpec::new(2, 4).with_disk_gb(10);
        assert_eq!(s.vcpus, 2);
        assert_eq!(s.mem_bytes, 4 << 30);
        assert_eq!(s.vdisk_bytes, 10 << 30);
    }
}
