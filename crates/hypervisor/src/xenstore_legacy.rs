//! Frozen seed implementation of the system store.
//!
//! This is the original, allocation-heavy `XenStore` exactly as it shipped
//! in the growth seed: `Vec<&str>` path splitting on every operation, a
//! linear scan over all watches per write, `String` clones per watch event,
//! and transaction commits validated against a full clone of the store.
//!
//! It is kept verbatim for two jobs:
//!
//! 1. **Differential oracle** — randomized tests drive the same operation
//!    sequence through this store and the optimized `crate::xenstore`
//!    implementation and assert identical reads, final trees and watch
//!    event streams (see `tests/store_differential.rs`).
//! 2. **Bench baseline** — the `hotpath` bench binary in `iorch-bench`
//!    times both implementations with the same harness so the recorded
//!    speedups in `BENCH_hotpath.json` are measured, not estimated.
//!
//! Do not "fix" or optimize this module; its value is that it does not
//! change. The one seed bug it preserves (remove fires a watch event only
//! for the removed root, not the descendants deleted with it) is pinned by
//! the differential tests, which special-case removals.

use std::collections::BTreeMap;

use crate::domain::DomainId;
use crate::xenstore::{Perms, StoreError, TxnId, WatchId, DOM0};

/// A queued watch firing in the seed representation: owned `String`s.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct WatchEvent {
    /// The watch that fired.
    pub watch: WatchId,
    /// Domain to notify.
    pub owner: DomainId,
    /// The path that was written or removed.
    pub path: String,
    /// New value (`None` for a removal).
    pub value: Option<String>,
}

#[derive(Clone, Debug)]
struct Node {
    value: Option<String>,
    perms: Perms,
    children: BTreeMap<String, Node>,
}

impl Node {
    fn new(perms: Perms) -> Self {
        Node {
            value: None,
            perms,
            children: BTreeMap::new(),
        }
    }
}

#[derive(Clone, Debug)]
struct Watch {
    id: WatchId,
    owner: DomainId,
    prefix: String,
}

/// The seed system store (see module docs — kept as-is on purpose).
#[derive(Clone, Debug)]
pub struct XenStore {
    root: Node,
    watches: Vec<Watch>,
    next_watch: u64,
    pending: Vec<WatchEvent>,
    txns: BTreeMap<u64, Vec<(DomainId, String, String)>>,
    next_txn: u64,
    write_counts: BTreeMap<DomainId, u64>,
}

fn split_path(path: &str) -> Result<Vec<&str>, StoreError> {
    if !path.starts_with('/') {
        return Err(StoreError::BadPath);
    }
    if path == "/" {
        return Ok(Vec::new());
    }
    let segs: Vec<&str> = path[1..].split('/').collect();
    if segs.iter().any(|s| s.is_empty()) {
        return Err(StoreError::BadPath);
    }
    Ok(segs)
}

impl Default for XenStore {
    fn default() -> Self {
        Self::new()
    }
}

impl XenStore {
    /// Empty store; the root is dom0-owned and world-readable.
    pub fn new() -> Self {
        XenStore {
            root: Node::new(Perms {
                owner: DOM0,
                others_read: true,
                others_write: false,
            }),
            watches: Vec::new(),
            next_watch: 0,
            pending: Vec::new(),
            txns: BTreeMap::new(),
            next_txn: 0,
            write_counts: BTreeMap::new(),
        }
    }

    fn lookup(&self, segs: &[&str]) -> Option<&Node> {
        let mut node = &self.root;
        for s in segs {
            node = node.children.get(*s)?;
        }
        Some(node)
    }

    fn lookup_mut(&mut self, segs: &[&str]) -> Option<&mut Node> {
        let mut node = &mut self.root;
        for s in segs {
            node = node.children.get_mut(*s)?;
        }
        Some(node)
    }

    /// Read a value.
    pub fn read(&self, caller: DomainId, path: &str) -> Result<String, StoreError> {
        let segs = split_path(path)?;
        let node = self.lookup(&segs).ok_or(StoreError::NotFound)?;
        if !node.perms.can_read(caller) {
            return Err(StoreError::PermissionDenied);
        }
        node.value.clone().ok_or(StoreError::NotFound)
    }

    /// Write a value, creating intermediate nodes (seed semantics).
    pub fn write(
        &mut self,
        caller: DomainId,
        path: &str,
        value: impl Into<String>,
    ) -> Result<(), StoreError> {
        let segs = split_path(path)?;
        if segs.is_empty() {
            return Err(StoreError::BadPath);
        }
        // Walk down, checking write permission on the deepest existing node.
        {
            let mut node = &self.root;
            let mut deepest = node;
            for s in &segs {
                match node.children.get(*s) {
                    Some(child) => {
                        node = child;
                        deepest = child;
                    }
                    None => break,
                }
            }
            if !deepest.perms.can_write(caller) {
                return Err(StoreError::PermissionDenied);
            }
        }
        // Create the chain with inherited perms.
        let mut node = &mut self.root;
        for s in &segs {
            let inherited = node.perms;
            node = node
                .children
                .entry((*s).to_string())
                .or_insert_with(|| Node::new(inherited));
        }
        let value = value.into();
        node.value = Some(value.clone());
        *self.write_counts.entry(caller).or_insert(0) += 1;
        self.fire_watches(path, Some(value));
        Ok(())
    }

    /// Remove a node (and its subtree). Seed bug preserved: only one event
    /// fires, for the removed root.
    pub fn remove(&mut self, caller: DomainId, path: &str) -> Result<(), StoreError> {
        let segs = split_path(path)?;
        if segs.is_empty() {
            return Err(StoreError::BadPath);
        }
        let (parent_segs, leaf) = segs.split_at(segs.len() - 1);
        let node = self.lookup(&segs).ok_or(StoreError::NotFound)?;
        if !node.perms.can_write(caller) {
            return Err(StoreError::PermissionDenied);
        }
        let parent = self.lookup_mut(parent_segs).ok_or(StoreError::NotFound)?;
        parent.children.remove(leaf[0]);
        self.fire_watches(path, None);
        Ok(())
    }

    /// List child names of a directory node.
    pub fn list(&self, caller: DomainId, path: &str) -> Result<Vec<String>, StoreError> {
        let segs = split_path(path)?;
        let node = self.lookup(&segs).ok_or(StoreError::NotFound)?;
        if !node.perms.can_read(caller) {
            return Err(StoreError::PermissionDenied);
        }
        Ok(node.children.keys().cloned().collect())
    }

    /// Set permissions on an existing node.
    pub fn set_perms(
        &mut self,
        caller: DomainId,
        path: &str,
        perms: Perms,
    ) -> Result<(), StoreError> {
        let segs = split_path(path)?;
        let node = self.lookup_mut(&segs).ok_or(StoreError::NotFound)?;
        if caller != DOM0 && caller != node.perms.owner {
            return Err(StoreError::PermissionDenied);
        }
        node.perms = perms;
        Ok(())
    }

    /// Create a directory node with explicit permissions.
    pub fn mkdir(&mut self, caller: DomainId, path: &str, perms: Perms) -> Result<(), StoreError> {
        let segs = split_path(path)?;
        if segs.is_empty() {
            return Err(StoreError::BadPath);
        }
        {
            let mut node = &self.root;
            let mut deepest = node;
            for s in &segs {
                match node.children.get(*s) {
                    Some(child) => {
                        node = child;
                        deepest = child;
                    }
                    None => break,
                }
            }
            if !deepest.perms.can_write(caller) {
                return Err(StoreError::PermissionDenied);
            }
        }
        let mut node = &mut self.root;
        for s in &segs {
            let inherited = node.perms;
            node = node
                .children
                .entry((*s).to_string())
                .or_insert_with(|| Node::new(inherited));
        }
        node.perms = perms;
        Ok(())
    }

    /// Register a watch on a path prefix.
    pub fn watch(&mut self, owner: DomainId, prefix: impl Into<String>) -> WatchId {
        let id = WatchId(self.next_watch);
        self.next_watch += 1;
        self.watches.push(Watch {
            id,
            owner,
            prefix: prefix.into(),
        });
        id
    }

    /// Remove a watch.
    pub fn unwatch(&mut self, id: WatchId) -> bool {
        let before = self.watches.len();
        self.watches.retain(|w| w.id != id);
        self.watches.len() != before
    }

    fn fire_watches(&mut self, path: &str, value: Option<String>) {
        for w in &self.watches {
            let hit = path == w.prefix
                || (path.starts_with(&w.prefix)
                    && path.as_bytes().get(w.prefix.len()) == Some(&b'/'))
                || w.prefix == "/";
            if hit {
                self.pending.push(WatchEvent {
                    watch: w.id,
                    owner: w.owner,
                    path: path.to_string(),
                    value: value.clone(),
                });
            }
        }
    }

    /// Drain queued watch events.
    pub fn take_events(&mut self) -> Vec<WatchEvent> {
        std::mem::take(&mut self.pending)
    }

    /// Whether any watch events are queued.
    pub fn has_events(&self) -> bool {
        !self.pending.is_empty()
    }

    /// Begin a transaction.
    pub fn txn_begin(&mut self) -> TxnId {
        let id = self.next_txn;
        self.next_txn += 1;
        self.txns.insert(id, Vec::new());
        TxnId(id)
    }

    /// Buffer a write inside a transaction (permissions checked at commit).
    pub fn txn_write(
        &mut self,
        txn: TxnId,
        caller: DomainId,
        path: impl Into<String>,
        value: impl Into<String>,
    ) -> Result<(), StoreError> {
        let buf = self
            .txns
            .get_mut(&txn.0)
            .ok_or(StoreError::BadTransaction)?;
        buf.push((caller, path.into(), value.into()));
        Ok(())
    }

    /// Commit a transaction, validating against a full clone of the store.
    pub fn txn_commit(&mut self, txn: TxnId) -> Result<(), StoreError> {
        let buf = self.txns.remove(&txn.0).ok_or(StoreError::BadTransaction)?;
        // Validate first against a clone (cheap at our scale), then apply.
        let mut probe = self.clone();
        probe.watches.clear();
        for (caller, path, value) in &buf {
            probe.write(*caller, path, value.clone())?;
        }
        for (caller, path, value) in buf {
            self.write(caller, &path, value)?;
        }
        Ok(())
    }

    /// Abort a transaction.
    pub fn txn_abort(&mut self, txn: TxnId) -> Result<(), StoreError> {
        self.txns.remove(&txn.0).ok_or(StoreError::BadTransaction)?;
        Ok(())
    }

    /// Writes performed by a domain.
    pub fn write_count(&self, dom: DomainId) -> u64 {
        self.write_counts.get(&dom).copied().unwrap_or(0)
    }

    /// Conventional per-domain subtree root, as in Xen.
    pub fn domain_path(dom: DomainId) -> String {
        format!("/local/domain/{}", dom.0)
    }

    /// Flatten the tree into `(path, value, perms)` rows, depth-first in
    /// child order — the comparison format shared with the optimized store.
    pub fn dump(&self) -> Vec<(String, Option<String>, Perms)> {
        let mut out = Vec::new();
        fn visit(node: &Node, path: &mut String, out: &mut Vec<(String, Option<String>, Perms)>) {
            for (name, child) in &node.children {
                let len = path.len();
                path.push('/');
                path.push_str(name);
                out.push((path.clone(), child.value.clone(), child.perms));
                visit(child, path, out);
                path.truncate(len);
            }
        }
        visit(&self.root, &mut String::new(), &mut out);
        out
    }
}
