//! Machine-level integration tests exercising the full I/O path and the
//! control-plane hook surface without the policy crate.

use std::cell::RefCell;
use std::rc::Rc;

use iorch_guestos::{FileOp, KernelSignal};
use iorch_hypervisor::{
    Cluster, ControlPlane, DomainId, IoPathMode, Machine, MachineConfig, Sched, VmSpec, WatchEvent,
    DOM0,
};
use iorch_simcore::{SimDuration, SimTime, Simulation};

/// A recording control plane: counts every hook invocation.
#[derive(Default)]
struct Recorder {
    signals: Rc<RefCell<Vec<(DomainId, KernelSignal)>>>,
    store_events: Rc<RefCell<Vec<WatchEvent>>>,
    ticks: Rc<RefCell<u32>>,
}

impl ControlPlane for Recorder {
    fn name(&self) -> &'static str {
        "recorder"
    }
    fn tick_period(&self) -> Option<SimDuration> {
        Some(SimDuration::from_millis(50))
    }
    fn on_kernel_signal(
        &mut self,
        m: &mut Machine,
        s: &mut Sched,
        dom: DomainId,
        sig: KernelSignal,
    ) {
        self.signals.borrow_mut().push((dom, sig));
        if sig == KernelSignal::CongestionQuery {
            m.cp_enter_congestion(s, dom);
        }
    }
    fn on_store_event(&mut self, _m: &mut Machine, _s: &mut Sched, ev: WatchEvent) {
        self.store_events.borrow_mut().push(ev);
    }
    fn on_tick(&mut self, _m: &mut Machine, _s: &mut Sched) {
        *self.ticks.borrow_mut() += 1;
    }
}

#[test]
fn control_plane_receives_signals_events_and_ticks() {
    let mut sim = Simulation::new(Cluster::new());
    let recorder = Recorder::default();
    let signals = Rc::clone(&recorder.signals);
    let events = Rc::clone(&recorder.store_events);
    let ticks = Rc::clone(&recorder.ticks);
    let (cl, s) = sim.parts_mut();
    let idx = cl.add_machine(MachineConfig::paper_testbed(1, IoPathMode::Paravirt));
    cl.install_control(s, idx, Box::new(recorder));
    let dom = cl.create_domain(s, idx, VmSpec::new(2, 4).with_disk_gb(10), |_| {});
    // Register a watch, then write through the store so the event flows
    // through XenBus latency to the control plane.
    cl.machine_mut(idx).store.watch(DOM0, "/local");
    let file = cl
        .machine_mut(idx)
        .kernel_mut(dom)
        .unwrap()
        .create_file(64 << 20)
        .unwrap();
    cl.machine_mut(idx)
        .store
        .write(DOM0, "/local/domain/1/test", "ping")
        .unwrap();
    // A buffered write triggers DirtyStatusChanged.
    cl.submit_op(
        s,
        idx,
        dom,
        0,
        FileOp::Write {
            file,
            offset: 0,
            len: 1 << 20,
        },
        None,
    );
    sim.run_until(SimTime::from_secs(1));
    assert!(
        signals
            .borrow()
            .iter()
            .any(|(d, s)| *d == dom && matches!(s, KernelSignal::DirtyStatusChanged(true))),
        "dirty signal must reach the control plane"
    );
    assert!(
        events
            .borrow()
            .iter()
            .any(|e| &*e.path == "/local/domain/1/test"),
        "watch event must be delivered"
    );
    assert!(*ticks.borrow() >= 15, "ticks={}", *ticks.borrow());
}

#[test]
fn io_paths_have_expected_overhead_ordering() {
    // The same single cold read must be cheaper through a polling core
    // than through the paravirt doorbell/interrupt path.
    let run = |mode: IoPathMode| {
        let mut sim = Simulation::new(Cluster::new());
        let (cl, s) = sim.parts_mut();
        let idx = cl.add_machine(MachineConfig::paper_testbed(2, mode));
        let dom = cl.create_domain(s, idx, VmSpec::new(2, 4).with_disk_gb(10), |_| {});
        let file = cl
            .machine_mut(idx)
            .kernel_mut(dom)
            .unwrap()
            .create_file(16 << 20)
            .unwrap();
        let out: Rc<RefCell<Option<SimDuration>>> = Rc::new(RefCell::new(None));
        let out2 = Rc::clone(&out);
        cl.submit_op(
            s,
            idx,
            dom,
            0,
            FileOp::Read {
                file,
                offset: 0,
                len: 64 << 10,
            },
            Some(Box::new(move |_, _, r| {
                *out2.borrow_mut() = Some(r.latency());
            })),
        );
        sim.run_until(SimTime::from_millis(50));
        let v = out.borrow().expect("read completes");
        v
    };
    let paravirt = run(IoPathMode::Paravirt);
    let polled = run(IoPathMode::DedicatedCores { per_socket: true });
    assert!(
        polled < paravirt,
        "polled {polled} must beat paravirt {paravirt}"
    );
}

#[test]
fn blkio_weights_shift_device_share() {
    // Two VMs flooding the device; tripling one VM's blkio weight must
    // move completed bytes toward it.
    let run = |weighted: bool| {
        let mut sim = Simulation::new(Cluster::new());
        let (cl, s) = sim.parts_mut();
        let idx = cl.add_machine(MachineConfig::paper_testbed(3, IoPathMode::Paravirt));
        let a = cl.create_domain(s, idx, VmSpec::new(2, 4).with_disk_gb(10), |_| {});
        let b = cl.create_domain(s, idx, VmSpec::new(2, 4).with_disk_gb(10), |_| {});
        if weighted {
            cl.machine_mut(idx).cp_set_blkio_weight(a, 600);
            cl.machine_mut(idx).cp_set_blkio_weight(b, 200);
        }
        for dom in [a, b] {
            let file = cl
                .machine_mut(idx)
                .kernel_mut(dom)
                .unwrap()
                .create_file(2 << 30)
                .unwrap();
            // Enough 1 MiB reads to keep the host queue backed up, so the
            // weighted-fair queue actually arbitrates.
            for i in 0..400u64 {
                cl.submit_op(
                    s,
                    idx,
                    dom,
                    (i % 2) as u32,
                    FileOp::Read {
                        file,
                        offset: (i * 509) % 1_900 * (1 << 20),
                        len: 1 << 20,
                    },
                    None,
                );
            }
        }
        // Sample mid-backlog, before either VM's work completes.
        sim.run_until(SimTime::from_millis(80));
        let m = sim.world().machine(idx);
        (m.io_bytes(a), m.io_bytes(b))
    };
    let (ua, ub) = run(false);
    let (wa, wb) = run(true);
    let unweighted_ratio = ua as f64 / ub.max(1) as f64;
    let weighted_ratio = wa as f64 / wb.max(1) as f64;
    assert!(
        weighted_ratio > unweighted_ratio * 1.2,
        "weights must bias service: {unweighted_ratio:.2} -> {weighted_ratio:.2}"
    );
}

#[test]
fn cluster_machines_are_isolated() {
    // I/O on machine 0 must not affect machine 1's device counters.
    let mut sim = Simulation::new(Cluster::new());
    let (cl, s) = sim.parts_mut();
    let m0 = cl.add_machine(MachineConfig::paper_testbed(4, IoPathMode::Paravirt));
    let m1 = cl.add_machine(MachineConfig::paper_testbed(5, IoPathMode::Paravirt));
    let dom = cl.create_domain(s, m0, VmSpec::new(2, 4).with_disk_gb(10), |_| {});
    let file = cl
        .machine_mut(m0)
        .kernel_mut(dom)
        .unwrap()
        .create_file(16 << 20)
        .unwrap();
    cl.submit_op(
        s,
        m0,
        dom,
        0,
        FileOp::Read {
            file,
            offset: 0,
            len: 1 << 20,
        },
        None,
    );
    sim.run_until(SimTime::from_millis(100));
    let w = sim.world();
    let (r0, _) = w.machine(m0).storage.monitor().byte_counts();
    let (r1, w1) = w.machine(m1).storage.monitor().byte_counts();
    assert!(r0 >= 1 << 20);
    assert_eq!((r1, w1), (0, 0));
}
