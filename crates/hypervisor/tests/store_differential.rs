//! Differential tests: the optimized store must be observationally
//! identical to the frozen seed implementation (`xenstore_legacy`) —
//! same read results, same tree contents, same watch-event streams, same
//! per-domain write counts — for arbitrary operation interleavings.
//!
//! The one *intentional* divergence is `remove` on a subtree: the seed
//! fired a single event for the removed root (a bug this PR fixes), while
//! the new store fires one event per deleted node. The random driver
//! checks that the new stream is a superset whose extra events are all
//! removals strictly below the removed root; a dedicated test pins the
//! exact shapes of both streams.

use iorch_hypervisor::xenstore_legacy::XenStore as LegacyStore;
use iorch_hypervisor::{DomainId, Perms, StoreError, XenStore, DOM0};
use iorch_simcore::{gen, SimRng};

const CASES: usize = 96;

/// Common event shape both stores can be projected onto.
type Ev = (u64, u32, String, Option<String>);

fn new_events(s: &mut XenStore) -> Vec<Ev> {
    s.take_events()
        .into_iter()
        .map(|e| {
            (
                e.watch.0,
                e.owner.0,
                e.path.to_string(),
                e.value.map(|v| v.to_string()),
            )
        })
        .collect()
}

fn legacy_events(s: &mut LegacyStore) -> Vec<Ev> {
    s.take_events()
        .into_iter()
        .map(|e| (e.watch.0, e.owner.0, e.path, e.value))
        .collect()
}

fn rand_perms(rng: &mut SimRng) -> Perms {
    Perms {
        owner: DomainId(rng.below(3) as u32),
        others_read: rng.chance(0.5),
        others_write: rng.chance(0.25),
    }
}

fn rand_path(rng: &mut SimRng) -> String {
    // A small alphabet makes prefix collisions (and thus interesting
    // watch/permission interactions) common.
    gen::path_from_alphabet(rng, &["a", "b", "ab", "cd"], 4)
}

fn errs_match(a: &StoreError, b: &StoreError) -> bool {
    std::mem::discriminant(a) == std::mem::discriminant(b)
}

/// Drive both stores with an identical random op stream and require
/// identical observable behaviour at every step.
#[test]
fn random_ops_match_seed_implementation() {
    for seed in gen::seeds(0xD1FF_0001, CASES) {
        let mut rng = SimRng::new(seed);
        let mut new = XenStore::new();
        let mut old = LegacyStore::new();
        let ops = 40 + rng.below(80);
        for step in 0..ops {
            let roll = rng.below(100);
            let dom = DomainId(rng.below(3) as u32);
            if roll < 40 {
                let p = rand_path(&mut rng);
                let v = format!("v{}", rng.below(8));
                let rn = new.write(dom, p.as_str(), v.as_str());
                let ro = old.write(dom, &p, v.clone());
                match (&rn, &ro) {
                    (Ok(()), Ok(())) => {}
                    (Err(a), Err(b)) if errs_match(a, b) => {}
                    _ => panic!("write({p}) diverged: {rn:?} vs {ro:?} (seed {seed} step {step})"),
                }
            } else if roll < 48 {
                let p = rand_path(&mut rng);
                let perms = rand_perms(&mut rng);
                let rn = new.mkdir(DOM0, p.as_str(), perms);
                let ro = old.mkdir(DOM0, &p, perms);
                assert_eq!(rn.is_ok(), ro.is_ok(), "mkdir({p}) diverged (seed {seed})");
            } else if roll < 56 {
                let p = rand_path(&mut rng);
                new.watch(dom, p.as_str());
                old.watch(dom, p.clone());
            } else if roll < 60 {
                // Both stores hand out sequential ids; unwatch the same one.
                let id = iorch_hypervisor::WatchId(1 + rng.below(8));
                assert_eq!(
                    new.unwatch(id),
                    old.unwatch(id),
                    "unwatch diverged (seed {seed})"
                );
            } else if roll < 68 {
                let p = rand_path(&mut rng);
                let rn = new.remove(DOM0, p.as_str());
                let ro = old.remove(DOM0, &p);
                assert_eq!(rn.is_ok(), ro.is_ok(), "remove({p}) diverged (seed {seed})");
                // Intentional divergence: the seed fired one event per
                // removed *subtree*; the fixed store fires one per node.
                let en = new_events(&mut new);
                let eo = legacy_events(&mut old);
                for e in &eo {
                    assert!(
                        en.contains(e),
                        "legacy remove event {e:?} missing from new stream (seed {seed})"
                    );
                }
                for e in &en {
                    assert!(
                        e.3.is_none(),
                        "remove fired a non-removal event {e:?} (seed {seed})"
                    );
                    if !eo.contains(e) {
                        assert!(
                            e.2.starts_with(&p) && e.2.len() > p.len(),
                            "extra event {e:?} not below removed root {p} (seed {seed})"
                        );
                    }
                }
                continue;
            } else if roll < 76 {
                let p = rand_path(&mut rng);
                let rn = new.read(dom, p.as_str());
                let ro = old.read(dom, &p);
                match (&rn, &ro) {
                    (Ok(a), Ok(b)) => assert_eq!(a, b, "read({p}) diverged (seed {seed})"),
                    (Err(a), Err(b)) => {
                        assert!(errs_match(a, b), "read({p}) errors diverged (seed {seed})")
                    }
                    _ => panic!("read({p}) diverged: {rn:?} vs {ro:?} (seed {seed})"),
                }
            } else if roll < 82 {
                let p = rand_path(&mut rng);
                let rn = new.list(dom, p.as_str());
                let ro = old.list(dom, &p);
                assert_eq!(rn.is_ok(), ro.is_ok(), "list({p}) diverged (seed {seed})");
                if let (Ok(a), Ok(b)) = (rn, ro) {
                    assert_eq!(a, b, "list({p}) contents diverged (seed {seed})");
                }
            } else if roll < 88 {
                let p = rand_path(&mut rng);
                let perms = rand_perms(&mut rng);
                let rn = new.set_perms(DOM0, p.as_str(), perms);
                let ro = old.set_perms(DOM0, &p, perms);
                assert_eq!(
                    rn.is_ok(),
                    ro.is_ok(),
                    "set_perms({p}) diverged (seed {seed})"
                );
            } else {
                // Transaction: identical buffered writes, commit or abort.
                let tn = new.txn_begin();
                let to = old.txn_begin();
                for _ in 0..=rng.below(3) {
                    let p = rand_path(&mut rng);
                    let v = format!("t{}", rng.below(8));
                    let rn = new.txn_write(tn, dom, p.as_str(), v.as_str());
                    let ro = old.txn_write(to, dom, &p, v.clone());
                    assert_eq!(rn.is_ok(), ro.is_ok(), "txn_write diverged (seed {seed})");
                }
                if rng.chance(0.7) {
                    let rn = new.txn_commit(tn);
                    let ro = old.txn_commit(to);
                    assert_eq!(rn.is_ok(), ro.is_ok(), "txn_commit diverged (seed {seed})");
                } else {
                    new.txn_abort(tn).unwrap();
                    old.txn_abort(to).unwrap();
                }
            }
            // After every non-remove op: identical event streams (watch id,
            // owner, path, value — in order), identical trees.
            assert_eq!(
                new_events(&mut new),
                legacy_events(&mut old),
                "event streams diverged (seed {seed} step {step})"
            );
            assert_eq!(
                new.dump(),
                old.dump(),
                "trees diverged (seed {seed} step {step})"
            );
        }
        for d in 0..3 {
            assert_eq!(
                new.write_count(DomainId(d)),
                old.write_count(DomainId(d)),
                "write counts diverged (seed {seed})"
            );
        }
    }
}

/// The fixed `remove` fires one event per deleted node (parent first);
/// the seed fired only the root. Pin both shapes exactly.
#[test]
fn remove_divergence_is_exactly_the_bugfix() {
    let mut new = XenStore::new();
    let mut old = LegacyStore::new();
    new.write(DOM0, "/a/b/c", "1").unwrap();
    new.write(DOM0, "/a/b/d", "2").unwrap();
    new.watch(DOM0, "/a");
    new.take_events();
    new.remove(DOM0, "/a").unwrap();
    old.write(DOM0, "/a/b/c", "1").unwrap();
    old.write(DOM0, "/a/b/d", "2").unwrap();
    old.watch(DOM0, "/a");
    old.take_events();
    old.remove(DOM0, "/a").unwrap();
    let en: Vec<String> = new
        .take_events()
        .iter()
        .map(|e| e.path.to_string())
        .collect();
    let eo: Vec<String> = old.take_events().iter().map(|e| e.path.clone()).collect();
    assert_eq!(
        eo,
        vec!["/a"],
        "seed behaviour changed — legacy module was edited"
    );
    assert_eq!(en, vec!["/a", "/a/b", "/a/b/c", "/a/b/d"]);
}

/// A failed commit leaves the store byte-identical and fires no events.
#[test]
fn failed_commit_is_invisible() {
    let mut s = XenStore::new();
    let d1 = DomainId(1);
    s.mkdir(DOM0, "/local/domain/1", Perms::private_to(d1))
        .unwrap();
    s.write(d1, "/local/domain/1/x", "keep").unwrap();
    s.watch(DOM0, "/");
    s.take_events();
    let before = s.dump();

    let t = s.txn_begin();
    s.txn_write(t, d1, "/local/domain/1/x", "changed").unwrap();
    s.txn_write(t, d1, "/forbidden/path", "nope").unwrap();
    assert!(matches!(s.txn_commit(t), Err(StoreError::PermissionDenied)));

    assert_eq!(s.dump(), before, "failed commit mutated the tree");
    assert!(!s.has_events(), "failed commit fired events");
    assert_eq!(s.read(d1, "/local/domain/1/x").unwrap(), "keep");
}

/// A successful commit applies writes — and fires their events — in the
/// order they were buffered.
#[test]
fn successful_commit_fires_in_write_order() {
    let mut s = XenStore::new();
    s.watch(DOM0, "/");
    s.take_events();
    let t = s.txn_begin();
    s.txn_write(t, DOM0, "/c", "3").unwrap();
    s.txn_write(t, DOM0, "/a", "1").unwrap();
    s.txn_write(t, DOM0, "/b", "2").unwrap();
    s.txn_write(t, DOM0, "/a", "updated").unwrap();
    s.txn_commit(t).unwrap();
    let paths: Vec<String> = s.take_events().iter().map(|e| e.path.to_string()).collect();
    assert_eq!(paths, vec!["/c", "/a", "/b", "/a"]);
    assert_eq!(s.read(DOM0, "/a").unwrap(), "updated");
}

/// `write_if_changed` must agree with the legacy plain-write observable
/// state while suppressing only the no-op republish events.
#[test]
fn write_if_changed_matches_plain_write_state() {
    for seed in gen::seeds(0xD1FF_0002, 32) {
        let mut rng = SimRng::new(seed);
        let mut new = XenStore::new();
        let mut old = LegacyStore::new();
        new.watch(DOM0, "/");
        old.watch(DOM0, "/");
        for _ in 0..60 {
            let p = rand_path(&mut rng);
            let v = format!("v{}", rng.below(3));
            let changed = new.write_if_changed(DOM0, p.as_str(), v.as_str()).unwrap();
            old.write(DOM0, &p, v.clone()).unwrap();
            let en = new_events(&mut new);
            let eo = legacy_events(&mut old);
            if changed {
                assert_eq!(en, eo, "changed write must fire like seed (seed {seed})");
            } else {
                assert!(en.is_empty(), "suppressed write fired events (seed {seed})");
            }
        }
        // Same final tree either way.
        assert_eq!(new.dump(), old.dump(), "trees diverged (seed {seed})");
    }
}
