//! Randomized tests for the system store, the DRR I/O core and NUMA
//! placement, driven by the in-tree generators (`iorch_simcore::gen`) with
//! a fixed seed sweep — no external property-test crate.

use iorch_hypervisor::{
    CoreId, DomainId, IoCore, IoCoreParams, NumaTopology, Perms, PlacementPolicy, XenStore, DOM0,
};
use iorch_simcore::{gen, SimRng, SimTime};
use iorch_storage::{IoKind, IoRequest, RequestId, StreamId};

const CASES: usize = 64;

/// A path segment matching the old `[a-z][a-z0-9]{0,6}` strategy.
fn seg(rng: &mut SimRng) -> String {
    let mut s = String::new();
    s.push((b'a' + rng.below(26) as u8) as char);
    for _ in 0..rng.below(7) {
        let c = rng.below(36);
        s.push(if c < 26 {
            (b'a' + c as u8) as char
        } else {
            (b'0' + (c - 26) as u8) as char
        });
    }
    s
}

/// An absolute path of 1..=3 segments.
fn path(rng: &mut SimRng) -> String {
    let depth = rng.range(1, 3);
    let mut p = String::new();
    for _ in 0..depth {
        p.push('/');
        p.push_str(&seg(rng));
    }
    p
}

/// Printable-ASCII value, 0..=24 chars.
fn value(rng: &mut SimRng) -> String {
    let len = rng.below(25);
    (0..len)
        .map(|_| (b' ' + rng.below(95) as u8) as char)
        .collect()
}

/// Write-then-read roundtrips for the owner; other domains are denied
/// unless the path is under their subtree.
#[test]
fn store_roundtrip_and_isolation() {
    gen::for_each_seed(0xA9_0001, CASES, |seed, rng| {
        let p = path(rng);
        let v = value(rng);
        let mut store = XenStore::new();
        let own = DomainId(3);
        let other = DomainId(4);
        let full = format!("/local/domain/3{p}");
        store
            .mkdir(DOM0, "/local/domain/3", Perms::private_to(own))
            .unwrap();
        store.write(own, &full, v.clone()).unwrap();
        assert_eq!(store.read(own, &full).unwrap(), v, "seed {seed}");
        assert_eq!(store.read(DOM0, &full).unwrap(), v, "seed {seed}");
        assert!(store.read(other, &full).is_err(), "seed {seed}");
        assert!(store.write(other, &full, "x").is_err(), "seed {seed}");
    });
}

/// Watches fire exactly for writes at or below the prefix.
#[test]
fn watch_prefix_semantics() {
    gen::for_each_seed(0xA9_0002, CASES, |seed, rng| {
        // A small alphabet makes prefix/target relationships common.
        let alphabet = ["a", "ab", "b", "cd"];
        let prefix = gen::path_from_alphabet(rng, &alphabet, 3);
        let target = gen::path_from_alphabet(rng, &alphabet, 3);
        let mut store = XenStore::new();
        store.watch(DOM0, prefix.clone());
        store.write(DOM0, &target, "v").unwrap();
        let events = store.take_events();
        let should_fire = target == prefix
            || (target.starts_with(&prefix) && target.as_bytes().get(prefix.len()) == Some(&b'/'));
        assert_eq!(
            !events.is_empty(),
            should_fire,
            "prefix={prefix} target={target} (seed {seed})"
        );
    });
}

/// DRR conserves requests: everything enqueued is eventually finished
/// exactly once, regardless of quanta.
#[test]
fn drr_conserves_requests() {
    gen::for_each_seed(0xA9_0003, CASES, |seed, rng| {
        let sizes = gen::vec_between(rng, 1, 60, |r| 1 + r.below(2_000_000));
        let quanta = gen::vec_of(rng, 3, |r| 4096 + r.below(4_000_000 - 4096));
        let mut core = IoCore::new(0, CoreId(0), IoCoreParams::default());
        for (d, q) in quanta.iter().enumerate() {
            core.set_quantum(DomainId(d as u32), *q);
        }
        for (i, &len) in sizes.iter().enumerate() {
            let dom = DomainId((i % 3) as u32);
            core.enqueue(
                dom,
                IoRequest {
                    id: RequestId(i as u64),
                    kind: IoKind::Read,
                    stream: StreamId(dom.0),
                    offset: i as u64 * (1 << 22),
                    len,
                    submitted: SimTime::ZERO,
                },
                false,
                SimTime::ZERO,
            );
        }
        let mut seen = std::collections::HashSet::new();
        let mut now = SimTime::ZERO;
        while let Some(done) = core.start_next(now) {
            assert!(done >= now, "seed {seed}");
            now = done;
            let (_, req) = core.finish(now);
            assert!(seen.insert(req.id), "duplicate completion (seed {seed})");
        }
        assert_eq!(seen.len(), sizes.len(), "seed {seed}");
        assert_eq!(core.backlog(), 0, "seed {seed}");
    });
}

/// Placement: every VCPU gets a core, reserved cores are never used, and
/// unplace restores all load.
#[test]
fn placement_respects_reservations() {
    gen::for_each_seed(0xA9_0004, CASES, |seed, rng| {
        let vms = gen::vec_between(rng, 1, 5, |r| 1 + r.below(11) as u32);
        let reserve_first = rng.chance(0.5);
        let mut topo = NumaTopology::paper_testbed();
        if reserve_first {
            topo.reserve_io_core(CoreId(0));
            topo.reserve_io_core(CoreId(6));
        }
        let mut placed = Vec::new();
        for (i, &v) in vms.iter().enumerate() {
            let cores = topo.place(DomainId(i as u32), v, PlacementPolicy::PreferSameSocket);
            assert_eq!(cores.len(), v as usize, "seed {seed}");
            for c in &cores {
                assert!(!topo.is_reserved(*c), "VCPU on reserved core (seed {seed})");
            }
            placed.push(cores);
        }
        for cores in &placed {
            topo.unplace(cores);
        }
        for c in 0..topo.cores() {
            assert_eq!(topo.core_load(CoreId(c)), 0, "seed {seed}");
        }
    });
}

/// Store remove deletes whole subtrees and watches see the removal.
#[test]
fn remove_subtree_clean() {
    gen::for_each_seed(0xA9_0005, CASES, |seed, rng| {
        let p1 = seg(rng);
        let p2 = seg(rng);
        let mut store = XenStore::new();
        let parent = format!("/{p1}");
        let child = format!("/{p1}/{p2}");
        store.write(DOM0, &child, "v").unwrap();
        store.take_events();
        store.watch(DOM0, parent.clone());
        store.remove(DOM0, &parent).unwrap();
        assert!(store.read(DOM0, &child).is_err(), "seed {seed}");
        let evs = store.take_events();
        assert!(evs.iter().any(|e| e.value.is_none()), "seed {seed}");
    });
}
