//! Property-based tests for the system store, the DRR I/O core and NUMA
//! placement.

use proptest::prelude::*;

use iorch_hypervisor::{
    CoreId, DomainId, IoCore, IoCoreParams, NumaTopology, Perms, PlacementPolicy, XenStore, DOM0,
};
use iorch_simcore::SimTime;
use iorch_storage::{IoKind, IoRequest, RequestId, StreamId};

fn seg() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9]{0,6}".prop_map(|s| s)
}

fn path() -> impl Strategy<Value = String> {
    proptest::collection::vec(seg(), 1..4).prop_map(|segs| format!("/{}", segs.join("/")))
}

proptest! {
    /// Write-then-read roundtrips for the owner; other domains are denied
    /// unless the path is under their subtree.
    #[test]
    fn store_roundtrip_and_isolation(p in path(), value in "[ -~]{0,24}") {
        let mut store = XenStore::new();
        let own = DomainId(3);
        let other = DomainId(4);
        let full = format!("/local/domain/3{p}");
        store.mkdir(DOM0, "/local/domain/3", Perms::private_to(own)).unwrap();
        store.write(own, &full, value.clone()).unwrap();
        prop_assert_eq!(store.read(own, &full).unwrap(), value.clone());
        prop_assert_eq!(store.read(DOM0, &full).unwrap(), value);
        prop_assert!(store.read(other, &full).is_err());
        prop_assert!(store.write(other, &full, "x").is_err());
    }

    /// Watches fire exactly for writes at or below the prefix.
    #[test]
    fn watch_prefix_semantics(prefix in path(), target in path()) {
        let mut store = XenStore::new();
        store.watch(DOM0, prefix.clone());
        store.write(DOM0, &target, "v").unwrap();
        let events = store.take_events();
        let should_fire = target == prefix
            || (target.starts_with(&prefix)
                && target.as_bytes().get(prefix.len()) == Some(&b'/'));
        prop_assert_eq!(!events.is_empty(), should_fire,
            "prefix={} target={}", prefix, target);
    }

    /// DRR conserves requests: everything enqueued is eventually finished
    /// exactly once, regardless of quanta.
    #[test]
    fn drr_conserves_requests(
        sizes in proptest::collection::vec(1u64..2_000_000, 1..60),
        quanta in proptest::collection::vec(4096u64..4_000_000, 3),
    ) {
        let mut core = IoCore::new(0, CoreId(0), IoCoreParams::default());
        for (d, q) in quanta.iter().enumerate() {
            core.set_quantum(DomainId(d as u32), *q);
        }
        for (i, &len) in sizes.iter().enumerate() {
            let dom = DomainId((i % 3) as u32);
            core.enqueue(dom, IoRequest {
                id: RequestId(i as u64),
                kind: IoKind::Read,
                stream: StreamId(dom.0),
                offset: i as u64 * (1 << 22),
                len,
                submitted: SimTime::ZERO,
            }, false, SimTime::ZERO);
        }
        let mut seen = std::collections::HashSet::new();
        let mut now = SimTime::ZERO;
        while let Some(done) = core.start_next(now) {
            prop_assert!(done >= now);
            now = done;
            let (_, req) = core.finish(now);
            prop_assert!(seen.insert(req.id), "duplicate completion");
        }
        prop_assert_eq!(seen.len(), sizes.len());
        prop_assert_eq!(core.backlog(), 0);
    }

    /// Placement: every VCPU gets a core, reserved cores are never used,
    /// and unplace restores all load.
    #[test]
    fn placement_respects_reservations(
        vms in proptest::collection::vec(1u32..12, 1..6),
        reserve_first in any::<bool>(),
    ) {
        let mut topo = NumaTopology::paper_testbed();
        if reserve_first {
            topo.reserve_io_core(CoreId(0));
            topo.reserve_io_core(CoreId(6));
        }
        let mut placed = Vec::new();
        for (i, &v) in vms.iter().enumerate() {
            let cores = topo.place(DomainId(i as u32), v, PlacementPolicy::PreferSameSocket);
            prop_assert_eq!(cores.len(), v as usize);
            for c in &cores {
                prop_assert!(!topo.is_reserved(*c), "VCPU on reserved core");
            }
            placed.push(cores);
        }
        for cores in &placed {
            topo.unplace(cores);
        }
        for c in 0..topo.cores() {
            prop_assert_eq!(topo.core_load(CoreId(c)), 0);
        }
    }

    /// Store remove deletes whole subtrees and watches see the removal.
    #[test]
    fn remove_subtree_clean(p1 in seg(), p2 in seg()) {
        let mut store = XenStore::new();
        let parent = format!("/{p1}");
        let child = format!("/{p1}/{p2}");
        store.write(DOM0, &child, "v").unwrap();
        store.take_events();
        store.watch(DOM0, parent.clone());
        store.remove(DOM0, &parent).unwrap();
        prop_assert!(store.read(DOM0, &child).is_err());
        let evs = store.take_events();
        prop_assert!(evs.iter().any(|e| e.value.is_none()));
    }
}
