//! Property-based tests for the network model: causality and conservation.

use proptest::prelude::*;

use iorch_netsim::{NetParams, Network, NodeId};
use iorch_simcore::SimTime;

proptest! {
    /// Deliveries never precede sends, and per-sender deliveries to one
    /// receiver are FIFO.
    #[test]
    fn causality_and_fifo(
        msgs in proptest::collection::vec((0u64..10_000, 0usize..4, 0usize..4, 1u64..1_000_000), 1..60),
    ) {
        let mut sorted = msgs.clone();
        sorted.sort_by_key(|m| m.0);
        let mut net = Network::new(4, NetParams::default());
        let mut last_delivery: std::collections::HashMap<(usize, usize), SimTime> =
            std::collections::HashMap::new();
        for &(t, src, dst, len) in &sorted {
            let sent = SimTime::from_micros(t);
            let delivered = net.transfer_time(NodeId(src), NodeId(dst), len, sent);
            prop_assert!(delivered > sent, "delivery must take time");
            if src != dst {
                let key = (src, dst);
                if let Some(&prev) = last_delivery.get(&key) {
                    prop_assert!(delivered >= prev, "per-pair FIFO violated");
                }
                last_delivery.insert(key, delivered);
            }
        }
    }

    /// Byte counters are conserved per sender.
    #[test]
    fn byte_conservation(lens in proptest::collection::vec(1u64..100_000, 1..50)) {
        let mut net = Network::new(2, NetParams::default());
        let mut total = 0u64;
        for (i, &len) in lens.iter().enumerate() {
            net.transfer_time(NodeId(0), NodeId(1), len, SimTime::from_micros(i as u64));
            total += len;
        }
        prop_assert_eq!(net.bytes_sent(NodeId(0)), total);
        prop_assert_eq!(net.msgs_sent(NodeId(0)), lens.len() as u64);
        prop_assert_eq!(net.bytes_sent(NodeId(1)), 0);
    }

    /// Bigger messages never arrive sooner than smaller ones sent at the
    /// same instant on an idle link pair.
    #[test]
    fn monotone_in_size(a in 1u64..10_000_000, b in 1u64..10_000_000) {
        let t1 = {
            let mut net = Network::new(2, NetParams::default());
            net.transfer_time(NodeId(0), NodeId(1), a.min(b), SimTime::ZERO)
        };
        let t2 = {
            let mut net = Network::new(2, NetParams::default());
            net.transfer_time(NodeId(0), NodeId(1), a.max(b), SimTime::ZERO)
        };
        prop_assert!(t2 >= t1);
    }
}
