//! Randomized tests for the network model: causality and conservation.
//! Driven by the in-tree generators (`iorch_simcore::gen`) with a fixed
//! seed sweep — no external property-test crate.

use iorch_netsim::{NetParams, Network, NodeId};
use iorch_simcore::{gen, SimTime};

const CASES: usize = 64;

/// Deliveries never precede sends, and per-sender deliveries to one
/// receiver are FIFO.
#[test]
fn causality_and_fifo() {
    gen::for_each_seed(0x4E_0001, CASES, |seed, rng| {
        let msgs = gen::vec_between(rng, 1, 60, |r| {
            (
                r.below(10_000),
                r.below(4) as usize,
                r.below(4) as usize,
                1 + r.below(999_999),
            )
        });
        let mut sorted = msgs.clone();
        sorted.sort_by_key(|m| m.0);
        let mut net = Network::new(4, NetParams::default());
        let mut last_delivery: std::collections::HashMap<(usize, usize), SimTime> =
            std::collections::HashMap::new();
        for &(t, src, dst, len) in &sorted {
            let sent = SimTime::from_micros(t);
            let delivered = net.transfer_time(NodeId(src), NodeId(dst), len, sent);
            assert!(delivered > sent, "delivery must take time (seed {seed})");
            if src != dst {
                let key = (src, dst);
                if let Some(&prev) = last_delivery.get(&key) {
                    assert!(delivered >= prev, "per-pair FIFO violated (seed {seed})");
                }
                last_delivery.insert(key, delivered);
            }
        }
    });
}

/// Byte counters are conserved per sender.
#[test]
fn byte_conservation() {
    gen::for_each_seed(0x4E_0002, CASES, |seed, rng| {
        let lens = gen::vec_between(rng, 1, 50, |r| 1 + r.below(99_999));
        let mut net = Network::new(2, NetParams::default());
        let mut total = 0u64;
        for (i, &len) in lens.iter().enumerate() {
            net.transfer_time(NodeId(0), NodeId(1), len, SimTime::from_micros(i as u64));
            total += len;
        }
        assert_eq!(net.bytes_sent(NodeId(0)), total, "seed {seed}");
        assert_eq!(net.msgs_sent(NodeId(0)), lens.len() as u64, "seed {seed}");
        assert_eq!(net.bytes_sent(NodeId(1)), 0, "seed {seed}");
    });
}

/// Bigger messages never arrive sooner than smaller ones sent at the same
/// instant on an idle link pair.
#[test]
fn monotone_in_size() {
    gen::for_each_seed(0x4E_0003, CASES, |seed, rng| {
        let a = 1 + rng.below(10_000_000);
        let b = 1 + rng.below(10_000_000);
        let t1 = {
            let mut net = Network::new(2, NetParams::default());
            net.transfer_time(NodeId(0), NodeId(1), a.min(b), SimTime::ZERO)
        };
        let t2 = {
            let mut net = Network::new(2, NetParams::default());
            net.transfer_time(NodeId(0), NodeId(1), a.max(b), SimTime::ZERO)
        };
        assert!(t2 >= t1, "seed {seed}");
    });
}
