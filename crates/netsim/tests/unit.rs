//! Boundary-case unit coverage for `iorch-netsim`, beyond the in-module
//! tests: `TxQueue` admission at exact capacity, the full → drain → admit
//! cycle, EWMA determinism, and `Network` per-link serialization ordering.

use iorch_netsim::{NetParams, Network, NodeId, TxPush, TxQueue};
use iorch_simcore::{SimDuration, SimTime};

fn t(us: u64) -> SimTime {
    SimTime::from_micros(us)
}

#[test]
fn txqueue_exact_capacity_admit() {
    // A packet that lands the backlog exactly *at* capacity is admitted;
    // one byte more is rejected (the check is `backlog + bytes > cap`).
    let mut q = TxQueue::new(3000);
    assert_eq!(q.push(1500, t(0)), TxPush::Queued);
    assert_eq!(q.push(1500, t(0)), TxPush::Queued);
    assert_eq!(q.backlog(), q.capacity());
    assert_eq!(q.push(1, t(0)), TxPush::Full);
    assert_eq!(q.rejected(), 1);
    // A single packet exactly the size of the whole buffer also fits.
    let mut q = TxQueue::new(9000);
    assert_eq!(q.push(9000, t(0)), TxPush::Queued);
    assert_eq!(q.push(1, t(0)), TxPush::Full);
}

#[test]
fn txqueue_full_then_drain_then_admit() {
    let mut q = TxQueue::new(3000);
    q.push(1500, t(0));
    q.push(1500, t(0));
    assert_eq!(q.push(1500, t(1)), TxPush::Full);
    // Draining one packet frees exactly its bytes: admission resumes.
    assert_eq!(q.pop(t(2)), Some(1500));
    assert_eq!(q.backlog(), 1500);
    assert_eq!(q.push(1500, t(3)), TxPush::Queued);
    assert_eq!(q.push(1, t(3)), TxPush::Full);
    // Draining everything resets the backlog to zero but keeps the
    // cumulative counters.
    while q.pop(t(4)).is_some() {}
    assert!(q.is_empty());
    assert_eq!(q.backlog(), 0);
    assert_eq!(q.sent_bytes(), 4500);
    assert_eq!(q.rejected(), 2);
    assert_eq!(q.push(3000, t(5)), TxPush::Queued);
}

#[test]
fn txqueue_ewma_is_deterministic_and_seeds_from_first_pop() {
    let run = || {
        let mut q = TxQueue::new(1 << 20);
        for i in 0..8u64 {
            q.push(1500, t(i * 10));
        }
        let mut samples = Vec::new();
        for i in 0..8u64 {
            q.pop(t(1000 + i * 10));
            samples.push(q.avg_delay());
        }
        samples
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "EWMA must be bit-identical across identical runs");
    // First pop seeds the EWMA with the raw delay, no 0.9/0.1 blend with
    // the zero initial state.
    let mut q = TxQueue::new(1 << 20);
    q.push(1500, t(0));
    q.pop(t(250));
    assert_eq!(q.avg_delay(), SimDuration::from_micros(250));
    // Second pop blends: 0.9 * 250 + 0.1 * 350 = 260.
    q.push(1500, t(1000));
    q.pop(t(1350));
    assert_eq!(q.avg_delay(), SimDuration::from_micros(260));
}

#[test]
fn network_serializes_per_link_and_orders_deliveries() {
    let params = NetParams::default();
    let wire_100ms = 117 * 1024 * 1024 / 10;
    // Sender-side: three back-to-back transfers from node 0 leave in FIFO
    // order, each waiting for the previous one's wire time.
    let mut net = Network::new(4, params);
    let mut prev = SimTime::ZERO;
    for dst in 1..4 {
        let t = net.transfer_time(NodeId(0), NodeId(dst), wire_100ms, SimTime::ZERO);
        assert!(
            t.saturating_since(prev) >= SimDuration::from_millis(95),
            "transfer {dst} overlapped the previous one on the TX link: {t} vs {prev}"
        );
        prev = t;
    }
    // Receiver-side: different senders converging on one node are ordered
    // by the RX link even when they depart simultaneously.
    let mut net = Network::new(4, params);
    let a = net.transfer_time(NodeId(0), NodeId(3), wire_100ms, SimTime::ZERO);
    let b = net.transfer_time(NodeId(1), NodeId(3), wire_100ms, SimTime::ZERO);
    let c = net.transfer_time(NodeId(2), NodeId(3), wire_100ms, SimTime::ZERO);
    assert!(a < b && b < c, "RX deliveries must serialize: {a} {b} {c}");
    // Disjoint links never interfere: 0→1 and 2→3 behave as if alone.
    let mut shared = Network::new(4, params);
    let alone = shared.transfer_time(NodeId(0), NodeId(1), wire_100ms, SimTime::ZERO);
    let other = shared.transfer_time(NodeId(2), NodeId(3), wire_100ms, SimTime::ZERO);
    assert_eq!(alone, other, "disjoint links must not serialize");
}
