//! Deterministic inter-node message bus over [`Network::transfer_time`].
//!
//! The cluster control tier (controller ↔ node agents in `iorchestra`)
//! needs a transport with real failure modes — loss, duplication,
//! reordering, partitions, extra delay — that still replays bit-for-bit
//! from a `(seed, plan)` pair. [`MsgBus`] provides exactly that: `send`
//! asks the passive [`Network`] model for a delivery instant (so
//! concurrent transfers serialize on the endpoint NICs like every other
//! message), applies the active network faults from an installed
//! [`FaultPlan`], and parks the message in a `(deliver_at, seq)`-ordered
//! queue. The owner drives delivery from scheduler events: `next_due`
//! says when to wake, `take_due` hands back everything due at the current
//! instant, in a deterministic order.
//!
//! Fault semantics (all counter-driven, never RNG — see
//! [`FaultPlan::net_unreliable`]):
//!
//! * **partition** ([`FaultKind::NetPartition`]): messages crossing the
//!   cut are silently lost (the sender still burns NIC time — it cannot
//!   know);
//! * **drop / duplicate**: every n-th send attempt is lost / enqueued
//!   twice, counted over a monotonic per-bus sequence;
//! * **delay** ([`FaultKind::NetDelay`]): added to the delivery instant;
//! * **reorder**: each same-instant delivery batch taken while the fault
//!   is active is reversed.
//!
//! [`FaultKind::NetPartition`]: iorch_simcore::faults::FaultKind
//! [`FaultKind::NetDelay`]: iorch_simcore::faults::FaultKind
//! [`FaultPlan::net_unreliable`]: iorch_simcore::faults::FaultPlan::net_unreliable

use std::collections::BTreeMap;

use iorch_simcore::faults::FaultPlan;
use iorch_simcore::SimTime;

use crate::{NetParams, Network, NodeId};

/// What happened to a [`MsgBus::send`] attempt.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SendOutcome {
    /// Enqueued for delivery at the returned instant (a duplicate fault
    /// may deliver it twice).
    Sent(SimTime),
    /// Lost: an active partition separates the endpoints.
    DroppedPartition,
    /// Lost: the deterministic drop stride claimed this message.
    DroppedLoss,
}

/// Delivery/loss counters (deterministic, observable by experiments).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BusStats {
    /// Send attempts.
    pub sent: u64,
    /// Messages handed out by [`MsgBus::take_due`].
    pub delivered: u64,
    /// Messages lost to an active partition.
    pub dropped_partition: u64,
    /// Messages lost to the drop stride.
    pub dropped_loss: u64,
    /// Extra copies enqueued by the duplicate stride.
    pub duplicated: u64,
}

/// A deterministic message bus: the [`Network`] latency/serialization
/// model plus fault injection plus an ordered pending queue. `M` is the
/// application message type (cloned only when a duplicate fault fires).
#[derive(Clone, Debug)]
pub struct MsgBus<M> {
    net: Network,
    faults: FaultPlan,
    /// Pending deliveries keyed `(deliver_at, enqueue seq)` — BTreeMap
    /// iteration order *is* the delivery order.
    pending: BTreeMap<(SimTime, u64), (NodeId, M)>,
    /// Monotonic counter over send attempts, driving drop/dup strides.
    seq: u64,
    /// Tie-break counter for pending keys (also covers duplicates).
    enq: u64,
    stats: BusStats,
}

impl<M: Clone> MsgBus<M> {
    /// A bus over a fresh network of `n` nodes.
    pub fn new(n: usize, params: NetParams) -> Self {
        MsgBus {
            net: Network::new(n, params),
            faults: FaultPlan::new(),
            pending: BTreeMap::new(),
            seq: 0,
            enq: 0,
            stats: BusStats::default(),
        }
    }

    /// The underlying network model (read-only; byte/message counters).
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Delivery/loss counters so far.
    pub fn stats(&self) -> BusStats {
        self.stats
    }

    /// Layer `plan`'s network faults onto the bus (merging with anything
    /// already installed). Non-network kinds are ignored here — the
    /// cluster tier routes those to its own handlers.
    pub fn install_faults(&mut self, plan: &FaultPlan) {
        self.faults.merge(plan);
    }

    /// Send `len` wire bytes carrying `msg` from `src` to `dst` at `now`.
    ///
    /// Always charges the sender's NIC (a lost message still left the
    /// host). Returns where the message ended up; on `Sent`, delivery
    /// happens when the owner drains [`MsgBus::take_due`] at or after the
    /// returned instant.
    pub fn send(
        &mut self,
        src: NodeId,
        dst: NodeId,
        len: u64,
        msg: M,
        now: SimTime,
    ) -> SendOutcome {
        self.seq += 1;
        self.stats.sent += 1;
        let deliver = self.net.transfer_time(src, dst, len, now) + self.faults.net_delay(now);
        if self.faults.net_partitioned(src.0, dst.0, now) {
            self.stats.dropped_partition += 1;
            return SendOutcome::DroppedPartition;
        }
        let fault = self.faults.net_unreliable(now);
        if let Some(f) = fault {
            if f.drop_1_in != 0 && self.seq.is_multiple_of(f.drop_1_in) {
                self.stats.dropped_loss += 1;
                return SendOutcome::DroppedLoss;
            }
        }
        self.enq += 1;
        self.pending.insert((deliver, self.enq), (dst, msg.clone()));
        if let Some(f) = fault {
            if f.dup_1_in != 0 && self.seq.is_multiple_of(f.dup_1_in) {
                self.enq += 1;
                self.pending.insert((deliver, self.enq), (dst, msg));
                self.stats.duplicated += 1;
            }
        }
        SendOutcome::Sent(deliver)
    }

    /// Earliest pending delivery instant, if any — the owner schedules its
    /// next pump event here.
    pub fn next_due(&self) -> Option<SimTime> {
        self.pending.keys().next().map(|(t, _)| *t)
    }

    /// Remove and return every message due at or before `now`, as
    /// `(destination, message)` in `(deliver_at, seq)` order — reversed
    /// while a reorder fault is active at `now`.
    pub fn take_due(&mut self, now: SimTime) -> Vec<(NodeId, M)> {
        let mut batch = Vec::new();
        while let Some(&key) = self.pending.keys().next() {
            if key.0 > now {
                break;
            }
            let (_, entry) = self.pending.remove_entry(&key).unwrap();
            batch.push(entry);
        }
        self.stats.delivered += batch.len() as u64;
        if self
            .faults
            .net_unreliable(now)
            .is_some_and(|f| f.reorder && batch.len() > 1)
        {
            batch.reverse();
        }
        batch
    }

    /// Number of messages parked for future delivery.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iorch_simcore::faults::{FaultKind, FaultWindow};
    use iorch_simcore::SimDuration;

    fn ms(x: u64) -> SimTime {
        SimTime::from_millis(x)
    }

    fn bus(n: usize) -> MsgBus<&'static str> {
        MsgBus::new(n, NetParams::default())
    }

    #[test]
    fn delivers_in_order_after_transfer_time() {
        let mut b = bus(3);
        let SendOutcome::Sent(t1) = b.send(NodeId(0), NodeId(1), 1024, "a", ms(1)) else {
            panic!("lossless bus dropped a message");
        };
        let SendOutcome::Sent(t2) = b.send(NodeId(0), NodeId(2), 1024, "b", ms(1)) else {
            panic!("lossless bus dropped a message");
        };
        assert!(t1 > ms(1) && t2 >= t1, "t1={t1} t2={t2}");
        assert_eq!(b.next_due(), Some(t1));
        assert!(b.take_due(ms(1)).is_empty(), "nothing due yet");
        let out = b.take_due(t2);
        assert_eq!(out, vec![(NodeId(1), "a"), (NodeId(2), "b")]);
        assert_eq!(b.next_due(), None);
        assert_eq!(b.stats().delivered, 2);
    }

    #[test]
    fn partition_drops_across_the_cut_only() {
        let mut b = bus(3);
        b.install_faults(&FaultPlan::new().with(
            FaultWindow::new(ms(0), ms(100)),
            FaultKind::NetPartition { group: 0b100 },
        ));
        assert_eq!(
            b.send(NodeId(0), NodeId(2), 64, "cut", ms(10)),
            SendOutcome::DroppedPartition
        );
        assert!(matches!(
            b.send(NodeId(0), NodeId(1), 64, "same side", ms(10)),
            SendOutcome::Sent(_)
        ));
        // After the window heals, traffic flows again.
        assert!(matches!(
            b.send(NodeId(0), NodeId(2), 64, "healed", ms(100)),
            SendOutcome::Sent(_)
        ));
        assert_eq!(b.stats().dropped_partition, 1);
    }

    #[test]
    fn drop_dup_strides_are_deterministic() {
        let plan = FaultPlan::new().with(
            FaultWindow::always(),
            FaultKind::NetUnreliable {
                drop_1_in: 3,
                dup_1_in: 4,
                reorder: false,
            },
        );
        let run = || {
            let mut b = bus(2);
            b.install_faults(&plan);
            let mut log = Vec::new();
            for i in 0..12u64 {
                log.push(matches!(
                    b.send(NodeId(0), NodeId(1), 64, "m", ms(i)),
                    SendOutcome::DroppedLoss
                ));
            }
            (log, b.stats())
        };
        let (log1, s1) = run();
        let (log2, s2) = run();
        assert_eq!(log1, log2, "stride decisions must replay bit-for-bit");
        assert_eq!(s1, s2);
        assert_eq!(s1.dropped_loss, 4, "sends 3,6,9,12");
        // Send 4 and 8 duplicate (12 was dropped before the dup check).
        assert_eq!(s1.duplicated, 2);
    }

    #[test]
    fn duplicate_is_delivered_twice() {
        let mut b = bus(2);
        b.install_faults(&FaultPlan::new().with(
            FaultWindow::always(),
            FaultKind::NetUnreliable {
                drop_1_in: 0,
                dup_1_in: 1,
                reorder: false,
            },
        ));
        b.send(NodeId(0), NodeId(1), 64, "x", ms(0));
        let out = b.take_due(ms(1000));
        assert_eq!(out, vec![(NodeId(1), "x"), (NodeId(1), "x")]);
    }

    #[test]
    fn reorder_reverses_same_batch() {
        let mut b = bus(2);
        b.install_faults(&FaultPlan::new().with(
            FaultWindow::new(ms(500), ms(2000)),
            FaultKind::NetUnreliable {
                drop_1_in: 0,
                dup_1_in: 0,
                reorder: true,
            },
        ));
        b.send(NodeId(0), NodeId(1), 64, "first", ms(0));
        b.send(NodeId(0), NodeId(1), 64, "second", ms(0));
        // Drained inside the reorder window: batch comes back reversed.
        let out = b.take_due(ms(1000));
        assert_eq!(out, vec![(NodeId(1), "second"), (NodeId(1), "first")]);
    }

    #[test]
    fn net_delay_defers_delivery() {
        let mut plain = bus(2);
        let mut delayed = bus(2);
        delayed.install_faults(&FaultPlan::new().with(
            FaultWindow::always(),
            FaultKind::NetDelay {
                extra: SimDuration::from_millis(25),
            },
        ));
        let SendOutcome::Sent(t0) = plain.send(NodeId(0), NodeId(1), 64, "m", ms(0)) else {
            panic!("dropped");
        };
        let SendOutcome::Sent(t1) = delayed.send(NodeId(0), NodeId(1), 64, "m", ms(0)) else {
            panic!("dropped");
        };
        assert_eq!(t1, t0 + SimDuration::from_millis(25));
    }
}
