//! # iorch-netsim — inter-node network model for scale-out experiments
//!
//! The paper's Fig. 7 scales mpiBLAST and YCSB across up to eight machines;
//! the observable effect is that inter-node traffic (replication, shuffle,
//! coordination) adds latency that grows with cluster size. This crate
//! models a non-blocking datacenter switch with per-link bandwidth and
//! propagation delay — enough to reproduce that trend without a full
//! TCP stack.
//!
//! The model is passive (like the other substrates): callers ask
//! [`Network::transfer_time`] how long a message takes and schedule their
//! own delivery events; [`Network`] tracks per-link queueing so concurrent
//! transfers on one link serialize.

#![warn(missing_docs)]

pub mod bus;
mod txbuf;

pub use bus::{BusStats, MsgBus, SendOutcome};
pub use txbuf::{TxPush, TxQueue};

use iorch_simcore::{SimDuration, SimTime};

/// Identifies a node (machine NIC) on the network.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct NodeId(pub usize);

/// Network parameters.
#[derive(Clone, Copy, Debug)]
pub struct NetParams {
    /// Per-NIC bandwidth, bytes/s (GbE ≈ 117 MiB/s effective).
    pub link_bw: u64,
    /// One-way propagation + switching delay.
    pub base_latency: SimDuration,
    /// Fixed per-message software overhead (TCP/IP stack, virtio-net).
    pub per_msg_overhead: SimDuration,
}

impl Default for NetParams {
    fn default() -> Self {
        NetParams {
            link_bw: 117 * 1024 * 1024,
            base_latency: SimDuration::from_micros(80),
            per_msg_overhead: SimDuration::from_micros(25),
        }
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct Nic {
    tx_busy_until: SimTime,
    rx_busy_until: SimTime,
    bytes_sent: u64,
    msgs_sent: u64,
}

/// A non-blocking switch connecting `n` nodes (full bisection bandwidth;
/// contention only at the endpoint NICs, which is the common case in a
/// rack-scale testbed).
#[derive(Clone, Debug)]
pub struct Network {
    params: NetParams,
    nics: Vec<Nic>,
}

impl Network {
    /// A network of `n` nodes.
    pub fn new(n: usize, params: NetParams) -> Self {
        Network {
            params,
            nics: vec![Nic::default(); n],
        }
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.nics.len()
    }

    /// Add a node (returns its id).
    pub fn add_node(&mut self) -> NodeId {
        self.nics.push(Nic::default());
        NodeId(self.nics.len() - 1)
    }

    /// Compute the delivery time of a `len`-byte message sent at `now`
    /// from `src` to `dst`, reserving NIC time on both ends. Messages on a
    /// busy NIC queue behind earlier ones (FIFO per NIC).
    ///
    /// A self-send (same node) costs only the software overhead.
    pub fn transfer_time(&mut self, src: NodeId, dst: NodeId, len: u64, now: SimTime) -> SimTime {
        let p = self.params;
        if src == dst {
            return now + p.per_msg_overhead;
        }
        let wire = SimDuration::from_secs_f64(len as f64 / p.link_bw as f64);
        // Serialize on the sender's TX side...
        let tx_start = self.nics[src.0].tx_busy_until.max(now) + p.per_msg_overhead;
        let tx_done = tx_start + wire;
        self.nics[src.0].tx_busy_until = tx_done;
        self.nics[src.0].bytes_sent += len;
        self.nics[src.0].msgs_sent += 1;
        // ...then land on the receiver's RX side after propagation.
        let rx_start = self.nics[dst.0].rx_busy_until.max(tx_done + p.base_latency);
        // RX processing of the payload overlaps the wire for long messages;
        // charge only the per-message overhead on the receiver.
        let delivered = rx_start + p.per_msg_overhead;
        self.nics[dst.0].rx_busy_until = delivered;
        delivered
    }

    /// Bytes sent by a node so far.
    pub fn bytes_sent(&self, node: NodeId) -> u64 {
        self.nics[node.0].bytes_sent
    }

    /// Messages sent by a node so far.
    pub fn msgs_sent(&self, node: NodeId) -> u64 {
        self.nics[node.0].msgs_sent
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(x: u64) -> SimTime {
        SimTime::from_millis(x)
    }

    #[test]
    fn self_send_is_cheap() {
        let mut net = Network::new(2, NetParams::default());
        let t = net.transfer_time(NodeId(0), NodeId(0), 1 << 20, ms(10));
        assert_eq!(t, ms(10) + SimDuration::from_micros(25));
    }

    #[test]
    fn small_message_is_latency_bound() {
        let mut net = Network::new(2, NetParams::default());
        let t = net.transfer_time(NodeId(0), NodeId(1), 1024, SimTime::ZERO);
        // overhead 25us + wire ~8us + latency 80us + rx overhead 25us
        assert!(t > SimTime::from_micros(100));
        assert!(t < SimTime::from_micros(200), "t={t}");
    }

    #[test]
    fn large_message_is_bandwidth_bound() {
        let mut net = Network::new(2, NetParams::default());
        let len = 117 * 1024 * 1024; // exactly 1 second of wire time
        let t = net.transfer_time(NodeId(0), NodeId(1), len, SimTime::ZERO);
        let secs = t.saturating_since(SimTime::ZERO).as_secs_f64();
        assert!((secs - 1.0).abs() < 0.01, "secs={secs}");
    }

    #[test]
    fn concurrent_sends_serialize_on_tx() {
        let mut net = Network::new(3, NetParams::default());
        let len = 117 * 1024 * 1024 / 10; // 100ms of wire each
        let t1 = net.transfer_time(NodeId(0), NodeId(1), len, SimTime::ZERO);
        let t2 = net.transfer_time(NodeId(0), NodeId(2), len, SimTime::ZERO);
        // The second transfer waits for the first on the sender NIC.
        assert!(t2 > t1);
        assert!(t2.saturating_since(t1) >= SimDuration::from_millis(95));
    }

    #[test]
    fn receiver_serializes_rx() {
        let mut net = Network::new(3, NetParams::default());
        let len = 117 * 1024 * 1024 / 10;
        let t1 = net.transfer_time(NodeId(0), NodeId(2), len, SimTime::ZERO);
        let t2 = net.transfer_time(NodeId(1), NodeId(2), len, SimTime::ZERO);
        // Different senders, same receiver: deliveries are ordered.
        assert!(t2 > t1);
    }

    #[test]
    fn counters() {
        let mut net = Network::new(2, NetParams::default());
        net.transfer_time(NodeId(0), NodeId(1), 500, SimTime::ZERO);
        net.transfer_time(NodeId(0), NodeId(1), 500, SimTime::ZERO);
        assert_eq!(net.bytes_sent(NodeId(0)), 1000);
        assert_eq!(net.msgs_sent(NodeId(0)), 2);
        assert_eq!(net.bytes_sent(NodeId(1)), 0);
    }

    #[test]
    fn add_node_grows_network() {
        let mut net = Network::new(1, NetParams::default());
        let n = net.add_node();
        assert_eq!(n, NodeId(1));
        assert_eq!(net.nodes(), 2);
    }
}
