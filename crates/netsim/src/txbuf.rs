//! Guest NIC transmit-buffer model — substrate for the paper's named
//! future-work extension (§7: "network buffer sizes, window sizes, packet
//! queues").
//!
//! A guest's virtio-net TX buffer admits packets up to a byte capacity;
//! the backend drains it at the rate the (shared) physical link grants.
//! An undersized buffer starves the link on bursts; an oversized one
//! bloats queueing delay. The guest cannot see the link, the host cannot
//! see the application's backlog — the same semantic gap the paper's
//! block-I/O functions close.

use std::collections::VecDeque;

use iorch_simcore::{SimDuration, SimTime};

/// One queued packet.
#[derive(Clone, Copy, Debug)]
struct Pkt {
    bytes: u64,
    enqueued: SimTime,
}

/// Outcome of an enqueue attempt.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TxPush {
    /// Packet admitted.
    Queued,
    /// Buffer full: the sender blocks (or the packet is dropped for
    /// datagram traffic).
    Full,
}

/// A byte-capacity-bounded transmit queue with occupancy statistics.
#[derive(Clone, Debug)]
pub struct TxQueue {
    capacity: u64,
    queued: VecDeque<Pkt>,
    queued_bytes: u64,
    rejected: u64,
    sent_bytes: u64,
    /// EWMA of the queueing delay packets experienced at dequeue.
    ewma_delay_us: f64,
    drained: u64,
}

impl TxQueue {
    /// Queue with an initial byte capacity.
    pub fn new(capacity: u64) -> Self {
        assert!(capacity > 0);
        TxQueue {
            capacity,
            queued: VecDeque::new(),
            queued_bytes: 0,
            rejected: 0,
            sent_bytes: 0,
            ewma_delay_us: 0.0,
            drained: 0,
        }
    }

    /// Current capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Resize the buffer (the collaborative knob). Shrinking never drops
    /// already-queued packets; it only gates new admissions.
    pub fn set_capacity(&mut self, capacity: u64) {
        self.capacity = capacity.max(1500);
    }

    /// Bytes currently queued.
    pub fn backlog(&self) -> u64 {
        self.queued_bytes
    }

    /// Packets rejected because the buffer was full.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Bytes successfully handed to the link.
    pub fn sent_bytes(&self) -> u64 {
        self.sent_bytes
    }

    /// EWMA of the queueing delay seen by recently sent packets.
    pub fn avg_delay(&self) -> SimDuration {
        SimDuration::from_micros_f64(self.ewma_delay_us)
    }

    /// Try to admit a packet at `now`.
    pub fn push(&mut self, bytes: u64, now: SimTime) -> TxPush {
        if self.queued_bytes + bytes > self.capacity {
            self.rejected += 1;
            return TxPush::Full;
        }
        self.queued.push_back(Pkt {
            bytes,
            enqueued: now,
        });
        self.queued_bytes += bytes;
        TxPush::Queued
    }

    /// Dequeue the next packet for transmission at `now`; returns its size.
    pub fn pop(&mut self, now: SimTime) -> Option<u64> {
        let pkt = self.queued.pop_front()?;
        self.queued_bytes -= pkt.bytes;
        self.sent_bytes += pkt.bytes;
        let delay = now.saturating_since(pkt.enqueued).as_micros_f64();
        self.ewma_delay_us = if self.drained == 0 {
            delay
        } else {
            0.9 * self.ewma_delay_us + 0.1 * delay
        };
        self.drained += 1;
        Some(pkt.bytes)
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.queued.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn admits_until_capacity() {
        let mut q = TxQueue::new(4500);
        assert_eq!(q.push(1500, t(0)), TxPush::Queued);
        assert_eq!(q.push(1500, t(0)), TxPush::Queued);
        assert_eq!(q.push(1500, t(0)), TxPush::Queued);
        assert_eq!(q.push(1500, t(0)), TxPush::Full);
        assert_eq!(q.backlog(), 4500);
        assert_eq!(q.rejected(), 1);
    }

    #[test]
    fn pop_frees_space_and_tracks_delay() {
        let mut q = TxQueue::new(3000);
        q.push(1500, t(0));
        q.push(1500, t(0));
        assert_eq!(q.pop(t(100)), Some(1500));
        assert_eq!(q.push(1500, t(100)), TxPush::Queued);
        assert!(q.avg_delay() >= SimDuration::from_micros(100));
        assert_eq!(q.sent_bytes(), 1500);
    }

    #[test]
    fn shrink_never_drops() {
        let mut q = TxQueue::new(6000);
        for _ in 0..4 {
            q.push(1500, t(0));
        }
        q.set_capacity(1500);
        assert_eq!(q.backlog(), 6000, "queued packets survive a shrink");
        assert_eq!(q.push(1500, t(1)), TxPush::Full);
        while q.pop(t(2)).is_some() {}
        assert_eq!(q.push(1500, t(3)), TxPush::Queued);
    }

    #[test]
    fn floor_capacity_is_one_mtu() {
        let mut q = TxQueue::new(100_000);
        q.set_capacity(0);
        assert_eq!(q.capacity(), 1500);
    }

    #[test]
    fn empty_pop() {
        let mut q = TxQueue::new(3000);
        assert_eq!(q.pop(t(0)), None);
        assert!(q.is_empty());
    }
}
