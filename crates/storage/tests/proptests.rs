//! Property-based tests for storage-layer invariants: WFQ fairness and
//! conservation, RAID0 address math, subsystem completion conservation.

use proptest::prelude::*;

use iorch_simcore::{SimRng, SimTime};
use iorch_storage::{
    IoKind, IoRequest, Raid0, RequestId, SsdModel, SsdParams, StorageSubsystem, StreamId,
    SubsystemParams, WfqQueue,
};

fn req(id: u64, stream: u32, offset: u64, len: u64) -> IoRequest {
    IoRequest {
        id: RequestId(id),
        kind: IoKind::Read,
        stream: StreamId(stream),
        offset,
        len,
        submitted: SimTime::ZERO,
    }
}

proptest! {
    /// WFQ conserves requests (everything enqueued dequeues exactly once)
    /// for arbitrary interleavings and weights.
    #[test]
    fn wfq_conserves(
        items in proptest::collection::vec((0u32..5, 1u64..1_000_000), 1..200),
        weights in proptest::collection::vec(1u32..1000, 5),
    ) {
        let mut q = WfqQueue::new();
        for (i, w) in weights.iter().enumerate() {
            q.set_weight(StreamId(i as u32), *w);
        }
        for (i, &(stream, len)) in items.iter().enumerate() {
            q.enqueue(req(i as u64, stream, i as u64 * (1 << 22), len));
        }
        prop_assert_eq!(q.len(), items.len());
        let mut ids = std::collections::HashSet::new();
        while let Some(r) = q.dequeue() {
            prop_assert!(ids.insert(r.id));
        }
        prop_assert_eq!(ids.len(), items.len());
        prop_assert!(q.is_empty());
    }

    /// Long-run WFQ service ratio approaches the weight ratio when both
    /// streams stay backlogged.
    #[test]
    fn wfq_fairness_tracks_weights(w1 in 1u32..16, w2 in 1u32..16) {
        let mut q = WfqQueue::new();
        q.set_weight(StreamId(1), w1 * 100);
        q.set_weight(StreamId(2), w2 * 100);
        let per_stream = 400usize;
        for i in 0..per_stream {
            q.enqueue(req(i as u64, 1, i as u64 * (1 << 22), 8192));
            q.enqueue(req(1000 + i as u64, 2, (500 + i as u64) * (1 << 22), 8192));
        }
        // Serve while both are backlogged.
        let serve = per_stream; // half the total
        let mut got = [0u64; 3];
        for _ in 0..serve {
            let r = q.dequeue().unwrap();
            got[r.stream.0 as usize] += r.len;
        }
        let expect_ratio = w1 as f64 / w2 as f64;
        let got_ratio = got[1] as f64 / got[2].max(1) as f64;
        prop_assert!(
            (got_ratio / expect_ratio - 1.0).abs() < 0.25,
            "w {w1}:{w2} expect {expect_ratio} got {got_ratio}"
        );
    }

    /// RAID0 span/member math: spans never exceed width, members rotate
    /// by stripe unit.
    #[test]
    fn raid_address_math(offset in 0u64..(1 << 40), len in 1u64..(1 << 24), disks in 1usize..16) {
        let mut p = SsdParams::intel520();
        p.noise_sigma = 0.0;
        let members = (0..disks).map(|_| SsdModel::new(p)).collect();
        let arr = Raid0::new(members, 64 * 1024);
        let span = arr.span(offset, len);
        prop_assert!(span >= 1 && span <= disks);
        let m = arr.member_for(offset);
        prop_assert!(m < disks);
        // Next stripe unit lands on the next member (mod width).
        let m2 = arr.member_for(offset + 64 * 1024);
        prop_assert_eq!(m2, (m + 1) % disks);
    }

    /// The subsystem completes every submitted request exactly once, in
    /// non-decreasing completion-time order.
    #[test]
    fn subsystem_conserves_requests(
        items in proptest::collection::vec((0u32..6, 1u64..(1 << 20)), 1..150),
        seed in any::<u64>(),
    ) {
        let mut p = SsdParams::intel520();
        p.noise_sigma = 0.1;
        let mut sub = StorageSubsystem::new(
            Box::new(SsdModel::new(p)),
            SubsystemParams::default(),
            SimRng::new(seed),
        );
        for (i, &(stream, len)) in items.iter().enumerate() {
            sub.submit(req(i as u64, stream, i as u64 * (1 << 22), len), SimTime::ZERO);
        }
        let mut done = 0usize;
        let mut last = SimTime::ZERO;
        let mut guard = 0;
        while let Some(t) = sub.next_completion() {
            prop_assert!(t >= last);
            last = t;
            done += sub.complete_due(t).len();
            guard += 1;
            prop_assert!(guard < 10_000, "no forward progress");
        }
        // Merging can combine submissions, so completions <= submissions,
        // but bytes are conserved.
        prop_assert!(done <= items.len());
        prop_assert_eq!(done + sub.merged_count() as usize, items.len());
        let (rbytes, _) = sub.monitor().byte_counts();
        let expect: u64 = items.iter().map(|&(_, len)| len).sum();
        prop_assert_eq!(rbytes, expect);
        prop_assert_eq!(sub.in_flight(), 0);
        prop_assert_eq!(sub.queue_depth(), 0);
    }
}
