//! Randomized tests for storage-layer invariants: WFQ fairness and
//! conservation, RAID0 address math, subsystem completion conservation.
//! Driven by the in-tree generators (`iorch_simcore::gen`) with a fixed
//! seed sweep — no external property-test crate.

use iorch_simcore::{gen, SimRng, SimTime};
use iorch_storage::{
    IoKind, IoRequest, Raid0, RequestId, SsdModel, SsdParams, StorageSubsystem, StreamId,
    SubsystemParams, WfqQueue,
};

const CASES: usize = 64;

fn req(id: u64, stream: u32, offset: u64, len: u64) -> IoRequest {
    IoRequest {
        id: RequestId(id),
        kind: IoKind::Read,
        stream: StreamId(stream),
        offset,
        len,
        submitted: SimTime::ZERO,
    }
}

/// WFQ conserves requests (everything enqueued dequeues exactly once)
/// for arbitrary interleavings and weights.
#[test]
fn wfq_conserves() {
    gen::for_each_seed(0x57_0001, CASES, |seed, rng| {
        let items = gen::vec_between(rng, 1, 200, |r| (r.below(5) as u32, 1 + r.below(999_999)));
        let weights = gen::vec_of(rng, 5, |r| 1 + r.below(999) as u32);
        let mut q = WfqQueue::new();
        for (i, w) in weights.iter().enumerate() {
            q.set_weight(StreamId(i as u32), *w);
        }
        for (i, &(stream, len)) in items.iter().enumerate() {
            q.enqueue(req(i as u64, stream, i as u64 * (1 << 22), len));
        }
        assert_eq!(q.len(), items.len(), "seed {seed}");
        let mut ids = std::collections::HashSet::new();
        while let Some(r) = q.dequeue() {
            assert!(ids.insert(r.id), "duplicate dequeue (seed {seed})");
        }
        assert_eq!(ids.len(), items.len(), "seed {seed}");
        assert!(q.is_empty(), "seed {seed}");
    });
}

/// Long-run WFQ service ratio approaches the weight ratio when both
/// streams stay backlogged.
#[test]
fn wfq_fairness_tracks_weights() {
    gen::for_each_seed(0x57_0002, CASES, |seed, rng| {
        let w1 = 1 + rng.below(15) as u32;
        let w2 = 1 + rng.below(15) as u32;
        let mut q = WfqQueue::new();
        q.set_weight(StreamId(1), w1 * 100);
        q.set_weight(StreamId(2), w2 * 100);
        let per_stream = 400usize;
        for i in 0..per_stream {
            q.enqueue(req(i as u64, 1, i as u64 * (1 << 22), 8192));
            q.enqueue(req(1000 + i as u64, 2, (500 + i as u64) * (1 << 22), 8192));
        }
        // Serve while both are backlogged.
        let serve = per_stream; // half the total
        let mut got = [0u64; 3];
        for _ in 0..serve {
            let r = q.dequeue().unwrap();
            got[r.stream.0 as usize] += r.len;
        }
        let expect_ratio = w1 as f64 / w2 as f64;
        let got_ratio = got[1] as f64 / got[2].max(1) as f64;
        assert!(
            (got_ratio / expect_ratio - 1.0).abs() < 0.25,
            "w {w1}:{w2} expect {expect_ratio} got {got_ratio} (seed {seed})"
        );
    });
}

/// RAID0 span/member math: spans never exceed width, members rotate
/// by stripe unit.
#[test]
fn raid_address_math() {
    gen::for_each_seed(0x57_0003, CASES, |seed, rng| {
        let offset = rng.below(1 << 40);
        let len = 1 + rng.below((1 << 24) - 1);
        let disks = 1 + rng.below(15) as usize;
        let mut p = SsdParams::intel520();
        p.noise_sigma = 0.0;
        let members = (0..disks).map(|_| SsdModel::new(p)).collect();
        let arr = Raid0::new(members, 64 * 1024);
        let span = arr.span(offset, len);
        assert!(span >= 1 && span <= disks, "seed {seed}");
        let m = arr.member_for(offset);
        assert!(m < disks, "seed {seed}");
        // Next stripe unit lands on the next member (mod width).
        let m2 = arr.member_for(offset + 64 * 1024);
        assert_eq!(m2, (m + 1) % disks, "seed {seed}");
    });
}

/// The subsystem completes every submitted request exactly once, in
/// non-decreasing completion-time order.
#[test]
fn subsystem_conserves_requests() {
    gen::for_each_seed(0x57_0004, CASES, |seed, rng| {
        let items = gen::vec_between(rng, 1, 150, |r| {
            (r.below(6) as u32, 1 + r.below((1 << 20) - 1))
        });
        let sub_seed = rng.next_u64();
        let mut p = SsdParams::intel520();
        p.noise_sigma = 0.1;
        let mut sub = StorageSubsystem::new(
            Box::new(SsdModel::new(p)),
            SubsystemParams::default(),
            SimRng::new(sub_seed),
        );
        for (i, &(stream, len)) in items.iter().enumerate() {
            sub.submit(
                req(i as u64, stream, i as u64 * (1 << 22), len),
                SimTime::ZERO,
            );
        }
        let mut done = 0usize;
        let mut last = SimTime::ZERO;
        let mut guard = 0;
        while let Some(t) = sub.next_completion() {
            assert!(t >= last, "seed {seed}");
            last = t;
            done += sub.complete_due(t).len();
            guard += 1;
            assert!(guard < 10_000, "no forward progress (seed {seed})");
        }
        // Merging can combine submissions, so completions <= submissions,
        // but bytes are conserved.
        assert!(done <= items.len(), "seed {seed}");
        assert_eq!(
            done + sub.merged_count() as usize,
            items.len(),
            "seed {seed}"
        );
        let (rbytes, _) = sub.monitor().byte_counts();
        let expect: u64 = items.iter().map(|&(_, len)| len).sum();
        assert_eq!(rbytes, expect, "seed {seed}");
        assert_eq!(sub.in_flight(), 0, "seed {seed}");
        assert_eq!(sub.queue_depth(), 0, "seed {seed}");
    });
}
