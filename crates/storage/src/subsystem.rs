//! The host storage subsystem: weighted-fair queue + device channels +
//! monitor, exposed as a passive state machine the hypervisor drives.
//!
//! The machine event loop calls [`StorageSubsystem::submit`] when a backend
//! pushes a request, asks [`next_completion`](StorageSubsystem::next_completion)
//! where to schedule the next device event, and calls
//! [`complete_due`](StorageSubsystem::complete_due) when that event fires.

use iorch_simcore::trace::TraceEventKind;
use iorch_simcore::{trace_event, FaultPlan, SimDuration, SimRng, SimTime};

use crate::device::DeviceModel;
use crate::monitor::DeviceMonitor;
use crate::request::{IoRequest, StreamId};
use crate::wfq::WfqQueue;

/// Tunables for the host storage subsystem.
#[derive(Clone, Copy, Debug)]
pub struct SubsystemParams {
    /// Maximum merged request size (Linux `max_sectors_kb` analogue).
    pub max_merged_len: u64,
    /// Queue depth (per device) above which the host considers itself
    /// congested — the management module's "overcrowded" test.
    pub congestion_queue_depth: usize,
    /// Monitoring window for bandwidth sampling.
    pub monitor_window: SimDuration,
}

impl Default for SubsystemParams {
    fn default() -> Self {
        SubsystemParams {
            // Host-level merging is disabled by default: a merged request
            // loses the absorbed request's identity, and the callers above
            // (guest kernels) track completions per request id. The guest
            // block layer already coalesces adjacent chunks before
            // submission, so the host sees large requests anyway.
            max_merged_len: 0,
            congestion_queue_depth: 64,
            monitor_window: SimDuration::from_millis(100),
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct InFlight {
    req: IoRequest,
    done_at: SimTime,
}

/// A channel slot: empty, carrying a request, or reserved as an extra
/// stripe lane for a request on another slot.
#[derive(Clone, Copy, Debug)]
enum Slot {
    Idle,
    Primary(InFlight),
    /// Reserved until the given time for a striped request elsewhere.
    Reserved(SimTime),
}

/// One block device plus its host-side queueing, fairness and monitoring.
pub struct StorageSubsystem {
    device: Box<dyn DeviceModel>,
    queue: WfqQueue,
    channels: Vec<Slot>,
    busy_count: usize,
    monitor: DeviceMonitor,
    params: SubsystemParams,
    rng: SimRng,
    merged: u64,
    submitted: u64,
    faults: Option<FaultPlan>,
}

impl StorageSubsystem {
    /// Wrap a device model.
    pub fn new(device: Box<dyn DeviceModel>, params: SubsystemParams, rng: SimRng) -> Self {
        let channels = device.channels();
        let monitor = DeviceMonitor::new(device.max_bandwidth(), channels, params.monitor_window);
        StorageSubsystem {
            device,
            queue: WfqQueue::new(),
            channels: vec![Slot::Idle; channels],
            busy_count: 0,
            monitor,
            params,
            rng,
            merged: 0,
            submitted: 0,
            faults: None,
        }
    }

    /// Install a fault plan; device-level faults (slowdown/stall windows)
    /// apply to requests *dispatched* while a window is active. With no
    /// plan installed the dispatch path pays only an `Option` check.
    pub fn install_faults(&mut self, plan: FaultPlan) {
        self.faults = Some(plan);
    }

    /// Remove any installed fault plan.
    pub fn clear_faults(&mut self) {
        self.faults = None;
    }

    /// Set a stream's fair-share weight (the cgroup blkio knob the
    /// co-scheduler programs).
    pub fn set_stream_weight(&mut self, stream: StreamId, weight: u32) {
        self.queue.set_weight(stream, weight);
    }

    /// Submit a request to the host queue, merging if possible, and start
    /// it immediately if a channel is idle.
    pub fn submit(&mut self, req: IoRequest, now: SimTime) {
        self.submitted += 1;
        if self.queue.try_merge(&req, self.params.max_merged_len) {
            self.merged += 1;
        } else {
            self.queue.enqueue(req);
        }
        self.kick(now);
    }

    /// Start queued requests on idle channels. A striped request reserves
    /// up to its stripe parallelism in idle channels so aggregate
    /// bandwidth is conserved.
    fn kick(&mut self, now: SimTime) {
        let mut changed = false;
        loop {
            let idle: Vec<usize> = (0..self.channels.len())
                .filter(|&c| matches!(self.channels[c], Slot::Idle))
                .collect();
            if idle.is_empty() {
                break;
            }
            let Some(req) = self.queue.dequeue() else {
                break;
            };
            let want = self.device.parallelism(&req).max(1);
            let k = want.min(idle.len());
            let primary = idle[0];
            let service = self.device.service_time_k(primary, &req, k, &mut self.rng);
            let mut done_at = now + service;
            if let Some(plan) = &self.faults {
                let factor = plan.device_slowdown(now);
                if factor != 1.0 {
                    done_at = now + service.mul_f64(factor);
                }
                if let Some(until) = plan.device_stall_until(now) {
                    done_at = done_at.max(until);
                }
            }
            trace_event!(
                now,
                TraceEventKind::DeviceDispatch {
                    req: req.id.0,
                    dom: req.stream.0,
                    write: req.kind.is_write(),
                    len: req.len,
                    qdepth: self.queue.len() as u32,
                }
            );
            self.channels[primary] = Slot::Primary(InFlight { req, done_at });
            for &c in idle.iter().take(k).skip(1) {
                self.channels[c] = Slot::Reserved(done_at);
            }
            self.busy_count += k;
            changed = true;
        }
        if changed {
            self.monitor.on_busy_channels(now, self.busy_count);
        }
    }

    /// Earliest pending completion, if any — the machine schedules its next
    /// device event here.
    pub fn next_completion(&self) -> Option<SimTime> {
        self.channels
            .iter()
            .filter_map(|slot| match slot {
                Slot::Primary(f) => Some(f.done_at),
                Slot::Reserved(t) => Some(*t),
                Slot::Idle => None,
            })
            .min()
    }

    /// Complete everything due at or before `now`, then refill channels.
    /// Returns completed requests in completion-time order.
    pub fn complete_due(&mut self, now: SimTime) -> Vec<IoRequest> {
        let mut done: Vec<(SimTime, IoRequest)> = Vec::new();
        for slot in &mut self.channels {
            match *slot {
                Slot::Primary(inflight) if inflight.done_at <= now => {
                    done.push((inflight.done_at, inflight.req));
                    *slot = Slot::Idle;
                    self.busy_count -= 1;
                }
                Slot::Reserved(t) if t <= now => {
                    *slot = Slot::Idle;
                    self.busy_count -= 1;
                }
                _ => {}
            }
        }
        done.sort_by_key(|&(t, r)| (t, r.id));
        for (t, req) in &done {
            self.monitor.on_complete(*t, req);
            trace_event!(
                *t,
                TraceEventKind::DeviceComplete {
                    req: req.id.0,
                    dom: req.stream.0,
                    latency_us: t.saturating_since(req.submitted).as_micros(),
                }
            );
        }
        self.monitor.on_busy_channels(now, self.busy_count);
        self.kick(now);
        done.into_iter().map(|(_, r)| r).collect()
    }

    /// Number of requests waiting in the host queue (not yet on a channel).
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// Number of requests in flight on device channels.
    pub fn in_flight(&self) -> usize {
        self.busy_count
    }

    /// Total requests accepted (including those later merged away).
    pub fn submitted_count(&self) -> u64 {
        self.submitted
    }

    /// How many submissions were absorbed by merging.
    pub fn merged_count(&self) -> u64 {
        self.merged
    }

    /// The management module's "host device is overcrowded" test: a deep
    /// host queue means real congestion (as opposed to a guest's false
    /// trigger).
    pub fn is_congested(&self) -> bool {
        self.queue.len() >= self.params.congestion_queue_depth
    }

    /// Drop all queued (not yet in-flight) requests of a stream — VM
    /// teardown. Returns how many were dropped.
    pub fn drain_stream(&mut self, stream: StreamId) -> usize {
        self.queue.drain_stream(stream).len()
    }

    /// Monitoring signals (bandwidth fraction, utilization, counters).
    pub fn monitor_mut(&mut self) -> &mut DeviceMonitor {
        &mut self.monitor
    }

    /// Read-only access to the monitor.
    pub fn monitor(&self) -> &DeviceMonitor {
        &self.monitor
    }

    /// Aggregate device bandwidth in bytes/s.
    pub fn device_bandwidth(&self) -> u64 {
        self.device.max_bandwidth()
    }

    /// Device model name.
    pub fn device_name(&self) -> &str {
        self.device.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{IoKind, RequestId};
    use crate::ssd::{SsdModel, SsdParams};

    fn quiet_subsystem(channels: usize) -> StorageSubsystem {
        let mut p = SsdParams::intel520();
        p.noise_sigma = 0.0;
        p.channels = channels;
        StorageSubsystem::new(
            Box::new(SsdModel::new(p)),
            SubsystemParams::default(),
            SimRng::new(1),
        )
    }

    fn req(id: u64, stream: u32, offset: u64, len: u64) -> IoRequest {
        IoRequest {
            id: RequestId(id),
            kind: IoKind::Read,
            stream: StreamId(stream),
            offset,
            len,
            submitted: SimTime::ZERO,
        }
    }

    #[test]
    fn single_request_completes_after_service_time() {
        let mut sub = quiet_subsystem(1);
        sub.submit(req(0, 1, 0, 4096), SimTime::ZERO);
        let done_at = sub.next_completion().unwrap();
        assert!(done_at > SimTime::ZERO);
        assert!(sub
            .complete_due(done_at - SimDuration::from_nanos(1))
            .is_empty());
        let done = sub.complete_due(done_at);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].id, RequestId(0));
        assert_eq!(sub.in_flight(), 0);
        assert!(sub.next_completion().is_none());
    }

    #[test]
    fn channels_run_in_parallel() {
        let mut sub = quiet_subsystem(4);
        for i in 0..4 {
            // Non-contiguous so no merging.
            sub.submit(req(i, i as u32, (i * 10) << 20, 4096), SimTime::ZERO);
        }
        assert_eq!(sub.in_flight(), 4);
        assert_eq!(sub.queue_depth(), 0);
        let t = sub.next_completion().unwrap();
        // All four should complete at the same (noise-free) time.
        let done = sub.complete_due(t);
        assert_eq!(done.len(), 4);
    }

    #[test]
    fn queue_backs_up_beyond_channels() {
        let mut sub = quiet_subsystem(2);
        for i in 0..10 {
            sub.submit(req(i, i as u32, (i * 10) << 20, 4096), SimTime::ZERO);
        }
        assert_eq!(sub.in_flight(), 2);
        assert_eq!(sub.queue_depth(), 8);
        // Completing frees channels and pulls more work in.
        let t = sub.next_completion().unwrap();
        sub.complete_due(t);
        assert_eq!(sub.in_flight(), 2);
        assert_eq!(sub.queue_depth(), 6);
    }

    #[test]
    fn sequential_same_stream_requests_merge() {
        let mut p = SsdParams::intel520();
        p.noise_sigma = 0.0;
        p.channels = 1;
        let mut sub = StorageSubsystem::new(
            Box::new(SsdModel::new(p)),
            SubsystemParams {
                max_merged_len: 1024 * 1024,
                ..SubsystemParams::default()
            },
            SimRng::new(1),
        );
        // First occupies the channel; next two are contiguous in queue.
        sub.submit(req(0, 1, 0, 4096), SimTime::ZERO);
        sub.submit(req(1, 1, 1 << 20, 4096), SimTime::ZERO);
        sub.submit(req(2, 1, (1 << 20) + 4096, 4096), SimTime::ZERO);
        assert_eq!(sub.merged_count(), 1);
        assert_eq!(sub.queue_depth(), 1);
    }

    #[test]
    fn congestion_flag_follows_queue_depth() {
        let mut sub = quiet_subsystem(1);
        assert!(!sub.is_congested());
        for i in 0..70 {
            sub.submit(req(i, i as u32, (i * 10) << 20, 4096), SimTime::ZERO);
        }
        assert!(sub.is_congested());
    }

    #[test]
    fn weights_bias_dispatch_order() {
        let mut sub = quiet_subsystem(1);
        sub.set_stream_weight(StreamId(1), 400);
        sub.set_stream_weight(StreamId(2), 100);
        // Fill the single channel, then queue 8 per stream.
        sub.submit(req(99, 9, 500 << 20, 4096), SimTime::ZERO);
        for i in 0..8 {
            sub.submit(req(i, 1, (100 + i * 10) << 20, 4096), SimTime::ZERO);
            sub.submit(req(100 + i, 2, (300 + i * 10) << 20, 4096), SimTime::ZERO);
        }
        // Drain and observe that stream 1 finishes its backlog much earlier.
        let mut completions: Vec<(usize, u32)> = Vec::new();
        let mut idx = 0;
        while let Some(t) = sub.next_completion() {
            for done in sub.complete_due(t) {
                completions.push((idx, done.stream.0));
                idx += 1;
            }
        }
        let last_s1 = completions
            .iter()
            .filter(|(_, s)| *s == 1)
            .map(|(i, _)| *i)
            .max()
            .unwrap();
        let last_s2 = completions
            .iter()
            .filter(|(_, s)| *s == 2)
            .map(|(i, _)| *i)
            .max()
            .unwrap();
        assert!(last_s1 < last_s2, "s1 backlog should clear first");
    }

    #[test]
    fn slowdown_window_stretches_service_time() {
        use iorch_simcore::{FaultKind, FaultWindow};
        let mut clean = quiet_subsystem(1);
        clean.submit(req(0, 1, 0, 4096), SimTime::ZERO);
        let clean_done = clean.next_completion().unwrap();

        let mut slow = quiet_subsystem(1);
        slow.install_faults(FaultPlan::new().with(
            FaultWindow::always(),
            FaultKind::DeviceSlowdown { factor: 4.0 },
        ));
        slow.submit(req(0, 1, 0, 4096), SimTime::ZERO);
        let slow_done = slow.next_completion().unwrap();
        assert_eq!(
            slow_done.saturating_since(SimTime::ZERO).as_nanos(),
            4 * clean_done.saturating_since(SimTime::ZERO).as_nanos()
        );

        // Outside the window the device is back to nominal speed.
        let mut windowed = quiet_subsystem(1);
        windowed.install_faults(FaultPlan::new().with(
            FaultWindow::new(SimTime::ZERO, SimTime::from_millis(1)),
            FaultKind::DeviceSlowdown { factor: 4.0 },
        ));
        let late = SimTime::from_millis(5);
        windowed.submit(req(0, 1, 0, 4096), late);
        let windowed_done = windowed.next_completion().unwrap();
        assert_eq!(windowed_done, late + (clean_done - SimTime::ZERO));
    }

    #[test]
    fn stall_window_defers_completion_to_window_end() {
        use iorch_simcore::{FaultKind, FaultWindow};
        let stall_end = SimTime::from_millis(50);
        let mut sub = quiet_subsystem(1);
        sub.install_faults(FaultPlan::new().with(
            FaultWindow::new(SimTime::ZERO, stall_end),
            FaultKind::DeviceStall,
        ));
        sub.submit(req(0, 1, 0, 4096), SimTime::ZERO);
        assert_eq!(sub.next_completion().unwrap(), stall_end);
        assert_eq!(sub.complete_due(stall_end).len(), 1);
        // Work dispatched after the window services normally.
        sub.submit(req(1, 1, 10 << 20, 4096), stall_end);
        assert!(sub.next_completion().unwrap() < stall_end + SimDuration::from_millis(1));
    }

    #[test]
    fn monitor_sees_completions() {
        let mut sub = quiet_subsystem(1);
        sub.submit(req(0, 1, 0, 8192), SimTime::ZERO);
        let t = sub.next_completion().unwrap();
        sub.complete_due(t);
        assert_eq!(sub.monitor().op_counts(), (1, 0));
        assert_eq!(sub.monitor().byte_counts(), (8192, 0));
    }
}
