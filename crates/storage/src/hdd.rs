//! Rotational-disk service-time model: seek + rotational delay + transfer,
//! with per-spindle head-position tracking so sequential streams are fast
//! and random access pays full mechanical cost.

use iorch_simcore::{SimDuration, SimRng};

use crate::device::{DeviceModel, ServiceNoise};
use crate::request::IoRequest;

/// Parameters for [`HddModel`].
#[derive(Clone, Copy, Debug)]
pub struct HddParams {
    /// Minimum (track-to-track) seek time.
    pub seek_min: SimDuration,
    /// Full-stroke seek time.
    pub seek_max: SimDuration,
    /// Spindle speed in RPM (for rotational latency).
    pub rpm: u32,
    /// Media transfer bandwidth, bytes/s.
    pub bandwidth: u64,
    /// Capacity in bytes.
    pub capacity: u64,
    /// Log-normal service noise sigma.
    pub noise_sigma: f64,
}

impl HddParams {
    /// A 7200 RPM enterprise SATA disk.
    pub fn enterprise_7200() -> Self {
        HddParams {
            seek_min: SimDuration::from_micros(500),
            seek_max: SimDuration::from_millis(9),
            rpm: 7200,
            bandwidth: 160 * 1024 * 1024,
            capacity: 1024 * 1024 * 1024 * 1024,
            noise_sigma: 0.1,
        }
    }
}

/// A single-spindle rotational disk.
#[derive(Clone, Debug)]
pub struct HddModel {
    params: HddParams,
    noise: ServiceNoise,
    head_pos: u64,
    name: String,
}

impl HddModel {
    /// Build from parameters; head starts at offset 0.
    pub fn new(params: HddParams) -> Self {
        assert!(params.bandwidth > 0 && params.capacity > 0 && params.rpm > 0);
        HddModel {
            noise: ServiceNoise::new(params.noise_sigma),
            head_pos: 0,
            name: format!("hdd-{}rpm", params.rpm),
            params,
        }
    }

    /// Seek time as a function of byte distance: square-root curve between
    /// `seek_min` and `seek_max`, zero for a sequential hit.
    fn seek_time(&self, from: u64, to: u64) -> SimDuration {
        if from == to {
            return SimDuration::ZERO;
        }
        let dist = from.abs_diff(to) as f64 / self.params.capacity as f64;
        let min = self.params.seek_min.as_secs_f64();
        let max = self.params.seek_max.as_secs_f64();
        SimDuration::from_secs_f64(min + (max - min) * dist.sqrt())
    }

    fn half_rotation(&self) -> SimDuration {
        // Average rotational delay = half a revolution.
        SimDuration::from_secs_f64(60.0 / self.params.rpm as f64 / 2.0)
    }
}

impl DeviceModel for HddModel {
    fn name(&self) -> &str {
        &self.name
    }

    fn channels(&self) -> usize {
        1
    }

    fn capacity_bytes(&self) -> u64 {
        self.params.capacity
    }

    fn max_bandwidth(&self) -> u64 {
        self.params.bandwidth
    }

    fn service_time(&mut self, _channel: usize, req: &IoRequest, rng: &mut SimRng) -> SimDuration {
        let seek = self.seek_time(self.head_pos, req.offset);
        let rot = if seek.is_zero() {
            // Sequential continuation: no rotational penalty.
            SimDuration::ZERO
        } else {
            // Uniform rotational delay in [0, one revolution).
            self.half_rotation().mul_f64(2.0 * rng.f64())
        };
        let transfer = SimDuration::from_secs_f64(req.len as f64 / self.params.bandwidth as f64);
        self.head_pos = req.end().min(self.params.capacity);
        self.noise.apply(seek + rot + transfer, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{IoKind, RequestId, StreamId};
    use iorch_simcore::SimTime;

    fn req(offset: u64, len: u64) -> IoRequest {
        IoRequest {
            id: RequestId(0),
            kind: IoKind::Read,
            stream: StreamId(0),
            offset,
            len,
            submitted: SimTime::ZERO,
        }
    }

    fn quiet_hdd() -> HddModel {
        let mut p = HddParams::enterprise_7200();
        p.noise_sigma = 0.0;
        HddModel::new(p)
    }

    #[test]
    fn sequential_stream_avoids_seeks() {
        let mut hdd = quiet_hdd();
        let mut rng = SimRng::new(1);
        let first = hdd.service_time(0, &req(0, 65536), &mut rng);
        // Continue exactly where the head landed.
        let second = hdd.service_time(0, &req(65536, 65536), &mut rng);
        assert!(second < first.max(SimDuration::from_micros(600)));
        // Sequential transfer time only: 64KiB / 160MiB/s ≈ 390us.
        let expect = 65536.0 / (160.0 * 1024.0 * 1024.0);
        assert!((second.as_secs_f64() - expect).abs() / expect < 0.05);
    }

    #[test]
    fn random_access_pays_mechanical_cost() {
        let mut hdd = quiet_hdd();
        let mut rng = SimRng::new(2);
        let far = hdd.params.capacity / 2;
        let t = hdd.service_time(0, &req(far, 4096), &mut rng);
        // Must include a multi-millisecond seek.
        assert!(t > SimDuration::from_millis(4), "t={t}");
    }

    #[test]
    fn seek_time_monotone_in_distance() {
        let hdd = quiet_hdd();
        let near = hdd.seek_time(0, hdd.params.capacity / 100);
        let far = hdd.seek_time(0, hdd.params.capacity);
        assert!(near < far);
        assert_eq!(hdd.seek_time(42, 42), SimDuration::ZERO);
        assert!(far <= hdd.params.seek_max + SimDuration::from_micros(1));
    }

    #[test]
    fn single_channel_geometry() {
        let hdd = HddModel::new(HddParams::enterprise_7200());
        assert_eq!(hdd.channels(), 1);
        assert_eq!(hdd.max_bandwidth(), 160 * 1024 * 1024);
    }
}
