//! Block I/O request model shared by the whole stack.

use iorch_simcore::SimTime;

/// Read or write.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum IoKind {
    /// A read from the device.
    Read,
    /// A write to the device.
    Write,
}

impl IoKind {
    /// True for [`IoKind::Write`].
    #[inline]
    pub fn is_write(self) -> bool {
        matches!(self, IoKind::Write)
    }
}

/// Identifies the logical submitter of a request at the storage layer —
/// one per virtual disk / guest domain. The storage crate is deliberately
/// ignorant of hypervisor domain types; upper layers map domains onto
/// streams.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct StreamId(pub u32);

/// Unique request id for tracing and completion matching.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct RequestId(pub u64);

/// A block I/O request travelling from a guest to a physical device.
#[derive(Clone, Copy, Debug)]
pub struct IoRequest {
    /// Unique id.
    pub id: RequestId,
    /// Read or write.
    pub kind: IoKind,
    /// Submitting stream (virtual disk / domain).
    pub stream: StreamId,
    /// Byte offset on the device address space.
    pub offset: u64,
    /// Length in bytes; always > 0.
    pub len: u64,
    /// When the request entered the host storage subsystem.
    pub submitted: SimTime,
}

impl IoRequest {
    /// One past the last byte touched.
    #[inline]
    pub fn end(&self) -> u64 {
        self.offset + self.len
    }

    /// True if `other` starts exactly where `self` ends and is mergeable
    /// (same kind, same stream) — the block layer's back-merge test.
    pub fn can_back_merge(&self, other: &IoRequest) -> bool {
        self.kind == other.kind && self.stream == other.stream && self.end() == other.offset
    }
}

/// Allocates unique request ids.
#[derive(Debug, Default, Clone)]
pub struct RequestIdAlloc {
    next: u64,
}

impl RequestIdAlloc {
    /// Fresh allocator starting at id 0.
    pub fn new() -> Self {
        Self::default()
    }
    /// Allocate the next id.
    pub fn alloc(&mut self) -> RequestId {
        let id = RequestId(self.next);
        self.next += 1;
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: u64, kind: IoKind, stream: u32, offset: u64, len: u64) -> IoRequest {
        IoRequest {
            id: RequestId(id),
            kind,
            stream: StreamId(stream),
            offset,
            len,
            submitted: SimTime::ZERO,
        }
    }

    #[test]
    fn end_offset() {
        let r = req(0, IoKind::Read, 1, 4096, 8192);
        assert_eq!(r.end(), 12288);
    }

    #[test]
    fn back_merge_rules() {
        let a = req(0, IoKind::Read, 1, 0, 4096);
        let contiguous = req(1, IoKind::Read, 1, 4096, 4096);
        let gap = req(2, IoKind::Read, 1, 8192, 4096);
        let other_kind = req(3, IoKind::Write, 1, 4096, 4096);
        let other_stream = req(4, IoKind::Read, 2, 4096, 4096);
        assert!(a.can_back_merge(&contiguous));
        assert!(!a.can_back_merge(&gap));
        assert!(!a.can_back_merge(&other_kind));
        assert!(!a.can_back_merge(&other_stream));
    }

    #[test]
    fn id_alloc_is_sequential_and_unique() {
        let mut alloc = RequestIdAlloc::new();
        let a = alloc.alloc();
        let b = alloc.alloc();
        assert_ne!(a, b);
        assert_eq!(a, RequestId(0));
        assert_eq!(b, RequestId(1));
    }
}
