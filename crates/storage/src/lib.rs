//! # iorch-storage — block-device substrate for the IOrchestra reproduction
//!
//! Models the paper's testbed storage (a RAID0 array of eight Intel
//! 520-class SSDs) and the host-side block layer the policies act on:
//!
//! * [`IoRequest`]/[`StreamId`] — the request currency of the whole stack;
//! * [`DeviceModel`] implementations: [`SsdModel`], [`HddModel`], and the
//!   [`Raid0`] striping combinator;
//! * [`WfqQueue`] — start-time weighted fair queueing, the stand-in for
//!   Linux cgroup blkio weights that IOrchestra's co-scheduler programs;
//! * [`StorageSubsystem`] — queue + device channels + monitoring composed
//!   into the passive state machine the hypervisor event loop drives;
//! * [`DeviceMonitor`] — the blktrace stand-in producing the bandwidth /
//!   idleness signals the management module consumes (flush fires when
//!   usage is below [`IDLE_BANDWIDTH_FRACTION`] of capacity).

#![warn(missing_docs)]

mod device;
mod hdd;
mod monitor;
mod raid;
mod request;
mod ssd;
mod subsystem;
mod wfq;

pub use device::{DeviceModel, ServiceNoise};
pub use hdd::{HddModel, HddParams};
pub use monitor::{DeviceMonitor, IDLE_BANDWIDTH_FRACTION};
pub use raid::Raid0;
pub use request::{IoKind, IoRequest, RequestId, RequestIdAlloc, StreamId};
pub use ssd::{SsdModel, SsdParams};
pub use subsystem::{StorageSubsystem, SubsystemParams};
pub use wfq::{WfqQueue, DEFAULT_WEIGHT};

/// Build the paper's testbed volume: RAID0 over eight Intel 520-class SSDs
/// (960 GB, ~4 GB/s aggregate) wrapped in a ready-to-drive subsystem.
pub fn paper_testbed_storage(seed: u64) -> StorageSubsystem {
    let members = (0..8)
        .map(|_| SsdModel::new(SsdParams::intel520()))
        .collect();
    let raid = Raid0::new(members, 64 * 1024);
    StorageSubsystem::new(
        Box::new(raid),
        SubsystemParams::default(),
        iorch_simcore::SimRng::new(seed),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_testbed_has_expected_geometry() {
        let sub = paper_testbed_storage(1);
        assert!(sub.device_name().starts_with("raid0x8"));
        // 8 drives x 4 channels x 130 MiB/s read
        assert_eq!(sub.device_bandwidth(), 8 * 4 * 130 * 1024 * 1024);
    }
}
