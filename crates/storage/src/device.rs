//! The device-model abstraction.
//!
//! A [`DeviceModel`] answers one question: *given this request arriving at a
//! given internal channel, how long does the medium take to service it?*
//! Queueing, fairness and dispatch live in
//! [`StorageSubsystem`](crate::StorageSubsystem); the model captures only the
//! medium (flash channels, disk mechanics, stripe geometry).

use iorch_simcore::{SimDuration, SimRng};

use crate::request::IoRequest;

/// A physical-medium service-time model.
pub trait DeviceModel {
    /// Human-readable model name for reports.
    fn name(&self) -> &str;

    /// Number of internal channels that can service requests concurrently
    /// (flash channels / spindles). The subsystem keeps one in-flight
    /// request per channel.
    fn channels(&self) -> usize;

    /// Usable capacity in bytes.
    fn capacity_bytes(&self) -> u64;

    /// Aggregate sustained bandwidth in bytes/second, used by the monitor
    /// as the "capacity" against which utilization is measured.
    fn max_bandwidth(&self) -> u64;

    /// Service time for `req` on `channel`. Implementations may keep
    /// per-channel mechanical state (e.g. head position) and may use `rng`
    /// for service-time noise.
    fn service_time(&mut self, channel: usize, req: &IoRequest, rng: &mut SimRng) -> SimDuration;

    /// How many channels this request can use concurrently (stripe
    /// parallelism). The subsystem occupies up to this many idle channels
    /// for the request; total bandwidth is conserved.
    fn parallelism(&self, _req: &IoRequest) -> usize {
        1
    }

    /// Service time when the request actually runs on `k` channels in
    /// parallel. Default: no speedup beyond the single-channel model.
    fn service_time_k(
        &mut self,
        channel: usize,
        req: &IoRequest,
        k: usize,
        rng: &mut SimRng,
    ) -> SimDuration {
        let _ = k;
        self.service_time(channel, req, rng)
    }
}

/// Multiplicative log-normal service-time noise shared by device models.
///
/// `sigma = 0` disables noise entirely (useful in unit tests).
#[derive(Clone, Copy, Debug)]
pub struct ServiceNoise {
    sigma: f64,
}

impl ServiceNoise {
    /// Noise with the given log-normal sigma (0 disables).
    pub fn new(sigma: f64) -> Self {
        assert!((0.0..1.0).contains(&sigma), "sigma out of range");
        ServiceNoise { sigma }
    }

    /// No noise.
    pub fn none() -> Self {
        ServiceNoise { sigma: 0.0 }
    }

    /// Apply noise to a base duration.
    pub fn apply(&self, base: SimDuration, rng: &mut SimRng) -> SimDuration {
        if self.sigma == 0.0 {
            return base;
        }
        // mu chosen so the multiplier has mean 1.
        let mu = -self.sigma * self.sigma / 2.0;
        let k = rng.log_normal(mu, self.sigma);
        base.mul_f64(k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iorch_simcore::SimDuration;

    #[test]
    fn zero_sigma_is_identity() {
        let noise = ServiceNoise::none();
        let mut rng = SimRng::new(1);
        let base = SimDuration::from_micros(100);
        assert_eq!(noise.apply(base, &mut rng), base);
    }

    #[test]
    fn noise_mean_is_near_one() {
        let noise = ServiceNoise::new(0.2);
        let mut rng = SimRng::new(2);
        let base = SimDuration::from_micros(100);
        let n = 100_000;
        let total: u64 = (0..n).map(|_| noise.apply(base, &mut rng).as_nanos()).sum();
        let avg = total as f64 / n as f64;
        assert!((avg - 100_000.0).abs() < 2_000.0, "avg={avg}");
    }

    #[test]
    #[should_panic(expected = "sigma out of range")]
    fn rejects_bad_sigma() {
        ServiceNoise::new(1.5);
    }
}
