//! RAID0 striping combinator over identical member devices — the paper's
//! testbed volume is a RAID0 of eight Intel 520 SSDs.
//!
//! The model maps the array's channels onto member-device channels and
//! accounts for stripe parallelism: a request spanning `k` stripe units is
//! serviced as `len/k` bytes of transfer on one member (the other members
//! work concurrently on their share through their own channels).

use iorch_simcore::{SimDuration, SimRng};

use crate::device::DeviceModel;
use crate::request::IoRequest;

/// RAID0 over `n` identical members with a fixed stripe unit.
pub struct Raid0<D: DeviceModel> {
    members: Vec<D>,
    stripe_unit: u64,
    name: String,
}

impl<D: DeviceModel> Raid0<D> {
    /// Build an array from members (must be non-empty) and a stripe unit in
    /// bytes (must be a power of two for cheap address math).
    pub fn new(members: Vec<D>, stripe_unit: u64) -> Self {
        assert!(!members.is_empty(), "RAID0 needs at least one member");
        assert!(
            stripe_unit.is_power_of_two(),
            "stripe unit must be a power of two"
        );
        let name = format!("raid0x{}-{}", members.len(), members[0].name());
        Raid0 {
            members,
            stripe_unit,
            name,
        }
    }

    /// Number of member devices.
    pub fn width(&self) -> usize {
        self.members.len()
    }

    /// Stripe unit in bytes.
    pub fn stripe_unit(&self) -> u64 {
        self.stripe_unit
    }

    /// How many members a request at `offset`..`offset+len` touches.
    pub fn span(&self, offset: u64, len: u64) -> usize {
        if len == 0 {
            return 1;
        }
        let first = offset / self.stripe_unit;
        let last = (offset + len - 1) / self.stripe_unit;
        ((last - first + 1) as usize).min(self.members.len())
    }

    /// Which member owns the stripe unit containing `offset`.
    pub fn member_for(&self, offset: u64) -> usize {
        ((offset / self.stripe_unit) % self.members.len() as u64) as usize
    }
}

impl<D: DeviceModel> DeviceModel for Raid0<D> {
    fn name(&self) -> &str {
        &self.name
    }

    fn channels(&self) -> usize {
        self.members.iter().map(|m| m.channels()).sum()
    }

    fn capacity_bytes(&self) -> u64 {
        self.members.iter().map(|m| m.capacity_bytes()).sum()
    }

    fn max_bandwidth(&self) -> u64 {
        self.members.iter().map(|m| m.max_bandwidth()).sum()
    }

    fn parallelism(&self, req: &IoRequest) -> usize {
        self.span(req.offset, req.len)
    }

    fn service_time(&mut self, channel: usize, req: &IoRequest, rng: &mut SimRng) -> SimDuration {
        // Single-channel service: the whole payload through one member
        // channel (no free parallelism — capacity is conserved).
        self.service_time_k(channel, req, 1, rng)
    }

    fn service_time_k(
        &mut self,
        channel: usize,
        req: &IoRequest,
        k: usize,
        rng: &mut SimRng,
    ) -> SimDuration {
        let n = self.members.len();
        let k = k.clamp(1, self.span(req.offset, req.len)) as u64;
        // The member doing "our" share of the stripe; per-member address is
        // the array offset folded down by the array width to preserve
        // sequentiality within a member. The payload is split over the `k`
        // channels the subsystem actually reserved.
        let member_idx = self.member_for(req.offset);
        let member = &mut self.members[member_idx];
        let member_channels = member.channels().max(1);
        let sub_channel = channel % member_channels;
        let sub = IoRequest {
            offset: req.offset / n as u64,
            len: (req.len / k).max(1),
            ..*req
        };
        member.service_time(sub_channel, &sub, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{IoKind, RequestId, StreamId};
    use crate::ssd::{SsdModel, SsdParams};
    use iorch_simcore::SimTime;

    fn quiet_array(n: usize) -> Raid0<SsdModel> {
        let mut p = SsdParams::intel520();
        p.noise_sigma = 0.0;
        let members = (0..n).map(|_| SsdModel::new(p)).collect();
        Raid0::new(members, 64 * 1024)
    }

    fn req(offset: u64, len: u64) -> IoRequest {
        IoRequest {
            id: RequestId(0),
            kind: IoKind::Read,
            stream: StreamId(0),
            offset,
            len,
            submitted: SimTime::ZERO,
        }
    }

    #[test]
    fn aggregates_geometry() {
        let arr = quiet_array(8);
        assert_eq!(arr.width(), 8);
        assert_eq!(arr.channels(), 32);
        assert_eq!(arr.capacity_bytes(), 8 * 120 * 1024 * 1024 * 1024);
        assert_eq!(
            arr.max_bandwidth(),
            8 * 4 * 130 * 1024 * 1024 // 8 drives × 4 channels × 130 MiB/s
        );
    }

    #[test]
    fn span_counts_stripe_units() {
        let arr = quiet_array(8);
        assert_eq!(arr.span(0, 1024), 1);
        assert_eq!(arr.span(0, 64 * 1024), 1);
        assert_eq!(arr.span(0, 64 * 1024 + 1), 2);
        assert_eq!(arr.span(0, 8 * 64 * 1024), 8);
        // Span is capped at the array width.
        assert_eq!(arr.span(0, 100 * 64 * 1024), 8);
        // Offset straddling a boundary.
        assert_eq!(arr.span(64 * 1024 - 1, 2), 2);
    }

    #[test]
    fn member_rotation() {
        let arr = quiet_array(4);
        assert_eq!(arr.member_for(0), 0);
        assert_eq!(arr.member_for(64 * 1024), 1);
        assert_eq!(arr.member_for(4 * 64 * 1024), 0);
    }

    #[test]
    fn striped_large_read_faster_with_more_lanes() {
        let mut arr = quiet_array(8);
        let mut rng = SimRng::new(3);
        let len = 8 * 1024 * 1024;
        let r = req(0, len);
        assert_eq!(arr.parallelism(&r), 8);
        let one_lane = arr.service_time_k(0, &r, 1, &mut rng);
        let eight_lanes = arr.service_time_k(0, &r, 8, &mut rng);
        assert!(
            eight_lanes.as_secs_f64() < one_lane.as_secs_f64() / 4.0,
            "8 lanes {eight_lanes} vs 1 lane {one_lane}"
        );
        // Plain service_time conserves capacity: no free parallelism.
        let plain = arr.service_time(0, &r, &mut rng);
        assert_eq!(plain, one_lane);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_odd_stripe() {
        let p = SsdParams::intel520();
        Raid0::new(vec![SsdModel::new(p)], 3000);
    }
}
