//! Device monitoring — the `blktrace` stand-in.
//!
//! The paper's monitoring module "collects physical disk status using
//! blktrace and reports it to the management module"; the flush policy
//! fires when "the bandwidth usage of a block device is lower than one
//! tenth of its capacity". [`DeviceMonitor`] provides exactly those
//! signals: a sliding-window completed-bytes rate compared against device
//! capacity, busy-channel utilization, and per-direction counters.

use iorch_metrics::{TimeWeightedGauge, WindowedRate};
use iorch_simcore::{SimDuration, SimTime};

use crate::request::{IoKind, IoRequest};

/// The paper's idleness threshold: bandwidth below 1/10 of capacity.
pub const IDLE_BANDWIDTH_FRACTION: f64 = 0.1;

/// Online statistics about one block device.
#[derive(Clone, Debug)]
pub struct DeviceMonitor {
    capacity_bw: u64,
    completed_bytes: WindowedRate,
    busy_channels: TimeWeightedGauge,
    total_channels: usize,
    reads: u64,
    writes: u64,
    read_bytes: u64,
    write_bytes: u64,
}

impl DeviceMonitor {
    /// Monitor for a device with the given aggregate bandwidth capacity and
    /// channel count, sampling bandwidth over `window`.
    pub fn new(capacity_bw: u64, total_channels: usize, window: SimDuration) -> Self {
        DeviceMonitor {
            capacity_bw,
            completed_bytes: WindowedRate::new(window),
            busy_channels: TimeWeightedGauge::new(SimTime::ZERO, 0.0),
            total_channels: total_channels.max(1),
            reads: 0,
            writes: 0,
            read_bytes: 0,
            write_bytes: 0,
        }
    }

    /// Record a completed request.
    pub fn on_complete(&mut self, now: SimTime, req: &IoRequest) {
        self.completed_bytes.record(now, req.len);
        match req.kind {
            IoKind::Read => {
                self.reads += 1;
                self.read_bytes += req.len;
            }
            IoKind::Write => {
                self.writes += 1;
                self.write_bytes += req.len;
            }
        }
    }

    /// Record the number of busy channels changing.
    pub fn on_busy_channels(&mut self, now: SimTime, busy: usize) {
        self.busy_channels
            .set(now, busy as f64 / self.total_channels as f64);
    }

    /// Bandwidth over the sampling window as a fraction of capacity.
    pub fn bandwidth_fraction(&mut self, now: SimTime) -> f64 {
        if self.capacity_bw == 0 {
            return 0.0;
        }
        self.completed_bytes.rate_per_sec(now) / self.capacity_bw as f64
    }

    /// The paper's flush trigger: usage below one tenth of capacity.
    pub fn is_underutilized(&mut self, now: SimTime) -> bool {
        self.bandwidth_fraction(now) < IDLE_BANDWIDTH_FRACTION
    }

    /// Time-weighted average busy-channel fraction.
    pub fn avg_utilization(&self, now: SimTime) -> f64 {
        self.busy_channels.average(now)
    }

    /// Instantaneous busy-channel fraction.
    pub fn current_utilization(&self) -> f64 {
        self.busy_channels.current()
    }

    /// (reads, writes) completed so far.
    pub fn op_counts(&self) -> (u64, u64) {
        (self.reads, self.writes)
    }

    /// (read bytes, write bytes) completed so far.
    pub fn byte_counts(&self) -> (u64, u64) {
        (self.read_bytes, self.write_bytes)
    }

    /// Device bandwidth capacity in bytes/s.
    pub fn capacity_bw(&self) -> u64 {
        self.capacity_bw
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{RequestId, StreamId};

    fn req(kind: IoKind, len: u64) -> IoRequest {
        IoRequest {
            id: RequestId(0),
            kind,
            stream: StreamId(0),
            offset: 0,
            len,
            submitted: SimTime::ZERO,
        }
    }

    #[test]
    fn idle_device_is_underutilized() {
        let mut m = DeviceMonitor::new(1_000_000, 4, SimDuration::from_millis(100));
        assert!(m.is_underutilized(SimTime::from_millis(500)));
        assert_eq!(m.bandwidth_fraction(SimTime::from_millis(500)), 0.0);
    }

    #[test]
    fn busy_device_is_not_underutilized() {
        // Capacity 1 MB/s, window 100ms -> 100_000 bytes fill the window.
        let mut m = DeviceMonitor::new(1_000_000, 4, SimDuration::from_millis(100));
        let t = SimTime::from_millis(200);
        m.on_complete(t, &req(IoKind::Read, 50_000));
        // 50_000 bytes / 0.1s = 500_000 B/s = 50% of capacity.
        assert!((m.bandwidth_fraction(t) - 0.5).abs() < 1e-9);
        assert!(!m.is_underutilized(t));
        // After the window slides past, it is idle again.
        assert!(m.is_underutilized(SimTime::from_millis(400)));
    }

    #[test]
    fn threshold_is_one_tenth() {
        let mut m = DeviceMonitor::new(1_000_000, 1, SimDuration::from_millis(100));
        let t = SimTime::from_millis(100);
        m.on_complete(t, &req(IoKind::Write, 9_000)); // 9% of capacity
        assert!(m.is_underutilized(t));
        m.on_complete(t, &req(IoKind::Write, 2_000)); // now 11%
        assert!(!m.is_underutilized(t));
    }

    #[test]
    fn counters_split_by_direction() {
        let mut m = DeviceMonitor::new(1_000_000, 1, SimDuration::from_millis(100));
        m.on_complete(SimTime::ZERO, &req(IoKind::Read, 100));
        m.on_complete(SimTime::ZERO, &req(IoKind::Write, 200));
        m.on_complete(SimTime::ZERO, &req(IoKind::Write, 300));
        assert_eq!(m.op_counts(), (1, 2));
        assert_eq!(m.byte_counts(), (100, 500));
    }

    #[test]
    fn utilization_tracks_busy_channels() {
        let mut m = DeviceMonitor::new(1_000_000, 4, SimDuration::from_millis(100));
        m.on_busy_channels(SimTime::ZERO, 4);
        m.on_busy_channels(SimTime::from_millis(50), 0);
        let avg = m.avg_utilization(SimTime::from_millis(100));
        assert!((avg - 0.5).abs() < 1e-9, "avg={avg}");
        assert_eq!(m.current_utilization(), 0.0);
    }
}
