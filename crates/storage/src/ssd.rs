//! SSD service-time model.
//!
//! Calibrated loosely on the paper's testbed drives (Intel 520-class SATA
//! SSDs): tens-of-microseconds access latency, ~500 MB/s sustained per
//! drive, writes slightly slower than reads once the drive is streaming.

use iorch_simcore::{SimDuration, SimRng};

use crate::device::{DeviceModel, ServiceNoise};
use crate::request::{IoKind, IoRequest};

/// Parameters for [`SsdModel`].
#[derive(Clone, Copy, Debug)]
pub struct SsdParams {
    /// Fixed per-request read latency (flash array + controller).
    pub read_latency: SimDuration,
    /// Fixed per-request write latency (program + controller).
    pub write_latency: SimDuration,
    /// Per-channel sustained read bandwidth, bytes/s.
    pub read_bw_per_channel: u64,
    /// Per-channel sustained write bandwidth, bytes/s.
    pub write_bw_per_channel: u64,
    /// Number of independent flash channels.
    pub channels: usize,
    /// Usable capacity in bytes.
    pub capacity: u64,
    /// Log-normal service noise sigma.
    pub noise_sigma: f64,
}

impl SsdParams {
    /// An Intel 520-class 120 GB SATA SSD, as used (×8) in the paper's
    /// RAID0 array. Reads sustain ~520 MB/s; sustained (post-cache,
    /// steady-state) writes on this SandForce generation collapse to
    /// ~150 MB/s per drive, which is what a writeback-heavy server sees.
    pub fn intel520() -> Self {
        SsdParams {
            read_latency: SimDuration::from_micros(55),
            write_latency: SimDuration::from_micros(65),
            read_bw_per_channel: 130 * 1024 * 1024, // 4 channels ≈ 520 MB/s
            write_bw_per_channel: 38 * 1024 * 1024, // 4 channels ≈ 150 MB/s
            channels: 4,
            capacity: 120 * 1024 * 1024 * 1024,
            noise_sigma: 0.12,
        }
    }
}

/// A multi-channel SSD.
#[derive(Clone, Debug)]
pub struct SsdModel {
    params: SsdParams,
    noise: ServiceNoise,
    name: String,
}

impl SsdModel {
    /// Build from parameters.
    pub fn new(params: SsdParams) -> Self {
        assert!(params.channels > 0, "SSD needs at least one channel");
        assert!(params.read_bw_per_channel > 0 && params.write_bw_per_channel > 0);
        SsdModel {
            noise: ServiceNoise::new(params.noise_sigma),
            name: format!("ssd-{}ch", params.channels),
            params,
        }
    }

    /// The model parameters.
    pub fn params(&self) -> &SsdParams {
        &self.params
    }
}

impl DeviceModel for SsdModel {
    fn name(&self) -> &str {
        &self.name
    }

    fn channels(&self) -> usize {
        self.params.channels
    }

    fn capacity_bytes(&self) -> u64 {
        self.params.capacity
    }

    fn max_bandwidth(&self) -> u64 {
        // Aggregate of the faster direction; the monitor compares actual
        // transfer rates against this.
        self.params
            .read_bw_per_channel
            .max(self.params.write_bw_per_channel)
            * self.params.channels as u64
    }

    fn service_time(&mut self, _channel: usize, req: &IoRequest, rng: &mut SimRng) -> SimDuration {
        let (lat, bw) = match req.kind {
            IoKind::Read => (self.params.read_latency, self.params.read_bw_per_channel),
            IoKind::Write => (self.params.write_latency, self.params.write_bw_per_channel),
        };
        let transfer = SimDuration::from_secs_f64(req.len as f64 / bw as f64);
        self.noise.apply(lat + transfer, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{RequestId, StreamId};
    use iorch_simcore::SimTime;

    fn req(kind: IoKind, len: u64) -> IoRequest {
        IoRequest {
            id: RequestId(0),
            kind,
            stream: StreamId(0),
            offset: 0,
            len,
            submitted: SimTime::ZERO,
        }
    }

    fn quiet_ssd() -> SsdModel {
        let mut p = SsdParams::intel520();
        p.noise_sigma = 0.0;
        SsdModel::new(p)
    }

    #[test]
    fn small_read_is_latency_bound() {
        let mut ssd = quiet_ssd();
        let mut rng = SimRng::new(1);
        let t = ssd.service_time(0, &req(IoKind::Read, 4096), &mut rng);
        // 55us latency + 4KiB/130MiB/s ≈ 55us + 30us
        assert!(t >= SimDuration::from_micros(55));
        assert!(t < SimDuration::from_micros(120), "t={t}");
    }

    #[test]
    fn large_read_is_bandwidth_bound() {
        let mut ssd = quiet_ssd();
        let mut rng = SimRng::new(1);
        let len = 64 * 1024 * 1024; // 64 MiB
        let t = ssd.service_time(0, &req(IoKind::Read, len), &mut rng);
        let expect = len as f64 / (130.0 * 1024.0 * 1024.0);
        let got = t.as_secs_f64();
        assert!(
            (got - expect).abs() / expect < 0.01,
            "got={got} expect={expect}"
        );
    }

    #[test]
    fn writes_slower_than_reads() {
        let mut ssd = quiet_ssd();
        let mut rng = SimRng::new(1);
        let r = ssd.service_time(0, &req(IoKind::Read, 65536), &mut rng);
        let w = ssd.service_time(0, &req(IoKind::Write, 65536), &mut rng);
        assert!(w > r);
    }

    #[test]
    fn reports_geometry() {
        let ssd = SsdModel::new(SsdParams::intel520());
        assert_eq!(ssd.channels(), 4);
        assert!(ssd.max_bandwidth() > 500 * 1024 * 1024);
        assert_eq!(ssd.capacity_bytes(), 120 * 1024 * 1024 * 1024);
        assert!(ssd.name().starts_with("ssd"));
    }
}
