//! Weighted fair queueing across streams — the stand-in for Linux cgroup
//! blkio proportional weights, which IOrchestra's co-scheduler programs
//! with per-I/O-core shares (paper §3.3).
//!
//! Start-time fair queueing with virtual time: each stream's backlog is
//! served in proportion to its weight over any busy interval.

use std::collections::{BTreeMap, VecDeque};

use crate::request::{IoRequest, StreamId};

/// Default weight for streams that never had one assigned (Linux blkio
/// default is 100 in a 10..1000 range).
pub const DEFAULT_WEIGHT: u32 = 100;

#[derive(Clone, Debug)]
struct Entry {
    req: IoRequest,
    finish_tag: f64,
}

/// A weighted fair queue of block requests.
#[derive(Clone, Debug, Default)]
pub struct WfqQueue {
    per_stream: BTreeMap<StreamId, VecDeque<Entry>>,
    weights: BTreeMap<StreamId, u32>,
    last_finish: BTreeMap<StreamId, f64>,
    virtual_time: f64,
    len: usize,
}

impl WfqQueue {
    /// Empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set a stream's weight (clamped to 1..=10_000). Takes effect for
    /// requests enqueued afterwards.
    pub fn set_weight(&mut self, stream: StreamId, weight: u32) {
        self.weights.insert(stream, weight.clamp(1, 10_000));
    }

    /// Current weight for a stream.
    pub fn weight(&self, stream: StreamId) -> u32 {
        self.weights.get(&stream).copied().unwrap_or(DEFAULT_WEIGHT)
    }

    /// Total queued requests.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no requests are queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Queued requests for one stream.
    pub fn stream_len(&self, stream: StreamId) -> usize {
        self.per_stream.get(&stream).map_or(0, |q| q.len())
    }

    /// Enqueue a request under its stream's weight.
    pub fn enqueue(&mut self, req: IoRequest) {
        let weight = self.weight(req.stream) as f64;
        let last = self.last_finish.get(&req.stream).copied().unwrap_or(0.0);
        let start = last.max(self.virtual_time);
        let finish = start + req.len as f64 / weight;
        self.last_finish.insert(req.stream, finish);
        self.per_stream
            .entry(req.stream)
            .or_default()
            .push_back(Entry {
                req,
                finish_tag: finish,
            });
        self.len += 1;
    }

    /// Try to back-merge `req` into the tail of its stream's queue (block
    /// layer elevator merging). Returns true if merged.
    pub fn try_merge(&mut self, req: &IoRequest, max_merged_len: u64) -> bool {
        if let Some(q) = self.per_stream.get_mut(&req.stream) {
            if let Some(tail) = q.back_mut() {
                if tail.req.can_back_merge(req) && tail.req.len + req.len <= max_merged_len {
                    tail.req.len += req.len;
                    return true;
                }
            }
        }
        false
    }

    /// Dequeue the request with the smallest virtual finish tag.
    pub fn dequeue(&mut self) -> Option<IoRequest> {
        let (&stream, _) = self
            .per_stream
            .iter()
            .filter(|(_, q)| !q.is_empty())
            .min_by(|(_, a), (_, b)| {
                let fa = a.front().unwrap().finish_tag;
                let fb = b.front().unwrap().finish_tag;
                fa.partial_cmp(&fb).unwrap()
            })?;
        let q = self.per_stream.get_mut(&stream).unwrap();
        let entry = q.pop_front().unwrap();
        if q.is_empty() {
            self.per_stream.remove(&stream);
        }
        self.len -= 1;
        self.virtual_time = self.virtual_time.max(entry.finish_tag);
        Some(entry.req)
    }

    /// Drop all queued requests for a stream (VM teardown). Returns them.
    pub fn drain_stream(&mut self, stream: StreamId) -> Vec<IoRequest> {
        let drained: Vec<IoRequest> = self
            .per_stream
            .remove(&stream)
            .map(|q| q.into_iter().map(|e| e.req).collect())
            .unwrap_or_default();
        self.len -= drained.len();
        drained
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{IoKind, RequestId};
    use iorch_simcore::SimTime;

    fn req(id: u64, stream: u32, len: u64) -> IoRequest {
        IoRequest {
            id: RequestId(id),
            kind: IoKind::Read,
            stream: StreamId(stream),
            offset: id * 4096,
            len,
            submitted: SimTime::ZERO,
        }
    }

    #[test]
    fn fifo_within_stream() {
        let mut q = WfqQueue::new();
        for i in 0..5 {
            q.enqueue(req(i, 1, 4096));
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.dequeue()).map(|r| r.id.0).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn equal_weights_interleave() {
        let mut q = WfqQueue::new();
        for i in 0..4 {
            q.enqueue(req(i, 1, 4096));
        }
        for i in 4..8 {
            q.enqueue(req(i, 2, 4096));
        }
        let streams: Vec<u32> = std::iter::from_fn(|| q.dequeue())
            .map(|r| r.stream.0)
            .collect();
        // With equal weights and equal sizes, service must alternate rather
        // than drain one stream first.
        assert_ne!(streams, vec![1, 1, 1, 1, 2, 2, 2, 2]);
        let first_half: Vec<u32> = streams[..4].to_vec();
        assert!(first_half.contains(&1) && first_half.contains(&2));
    }

    #[test]
    fn weights_skew_service() {
        let mut q = WfqQueue::new();
        q.set_weight(StreamId(1), 300);
        q.set_weight(StreamId(2), 100);
        for i in 0..30 {
            q.enqueue(req(i, 1, 4096));
        }
        for i in 30..60 {
            q.enqueue(req(i, 2, 4096));
        }
        // Count how much of stream 1 is served in the first 20 dispatches.
        let mut s1 = 0;
        for _ in 0..20 {
            if q.dequeue().unwrap().stream == StreamId(1) {
                s1 += 1;
            }
        }
        // Expected 15 of 20 (3:1); allow slack for start-up effects.
        assert!((13..=17).contains(&s1), "s1={s1}");
    }

    #[test]
    fn long_run_share_matches_weight_ratio() {
        let mut q = WfqQueue::new();
        q.set_weight(StreamId(1), 200);
        q.set_weight(StreamId(2), 100);
        // Keep both backlogged: enqueue 300 each, dispatch 150.
        for i in 0..300 {
            q.enqueue(req(i, 1, 8192));
            q.enqueue(req(1000 + i, 2, 8192));
        }
        let mut bytes = [0u64; 3];
        for _ in 0..150 {
            let r = q.dequeue().unwrap();
            bytes[r.stream.0 as usize] += r.len;
        }
        let ratio = bytes[1] as f64 / bytes[2] as f64;
        assert!((1.8..=2.2).contains(&ratio), "ratio={ratio}");
    }

    #[test]
    fn merge_extends_tail() {
        let mut q = WfqQueue::new();
        q.enqueue(req(0, 1, 4096)); // offset 0
        let next = IoRequest {
            id: RequestId(9),
            kind: IoKind::Read,
            stream: StreamId(1),
            offset: 4096,
            len: 4096,
            submitted: SimTime::ZERO,
        };
        assert!(q.try_merge(&next, 1 << 20));
        assert_eq!(q.len(), 1);
        let merged = q.dequeue().unwrap();
        assert_eq!(merged.len, 8192);
    }

    #[test]
    fn merge_respects_max_size() {
        let mut q = WfqQueue::new();
        q.enqueue(req(0, 1, 4096));
        let next = IoRequest {
            id: RequestId(9),
            kind: IoKind::Read,
            stream: StreamId(1),
            offset: 4096,
            len: 4096,
            submitted: SimTime::ZERO,
        };
        assert!(!q.try_merge(&next, 6000));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn drain_stream_removes_only_that_stream() {
        let mut q = WfqQueue::new();
        q.enqueue(req(0, 1, 4096));
        q.enqueue(req(1, 2, 4096));
        q.enqueue(req(2, 1, 4096));
        let drained = q.drain_stream(StreamId(1));
        assert_eq!(drained.len(), 2);
        assert_eq!(q.len(), 1);
        assert_eq!(q.dequeue().unwrap().stream, StreamId(2));
    }

    #[test]
    fn empty_queue_dequeues_none() {
        let mut q = WfqQueue::new();
        assert!(q.dequeue().is_none());
        assert!(q.is_empty());
        assert_eq!(q.stream_len(StreamId(7)), 0);
    }
}
